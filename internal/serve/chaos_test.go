package serve

// Chaos suite: the server under deterministic fault injection and hostile
// traffic. The invariants checked everywhere:
//
//  1. The process never dies — every injected panic is recovered.
//  2. Every response is well-formed: a known status code with a decodable
//     JSON body (success, degraded success, 429 shed, or 4xx/5xx error).
//  3. Any 200 solve — degraded or not — satisfies at least as many queries
//     as the greedy baseline on the same instance, because every ladder
//     rung above greedy is exact and the bottom rung IS the baseline.
//
// `go test -race ./internal/serve -run Chaos` exercises the storm once;
// `make soak` runs it in a loop for -soak (default 30s there, 0 disables
// the loop here so plain `go test` stays fast).

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"standout/internal/bitvec"
	"standout/internal/dataset"
	"standout/internal/fault"
)

var soakFor = flag.Duration("soak", 0, "run the chaos storm in a loop for this long (0 = single storm)")

// chaosInjector wires faults into every layer the request path crosses:
// slow solves, injected errors and cancellations, solver panics, forced prep
// staleness, and failing index rebuilds. All deterministic under the seed.
func chaosInjector(seed int64) *fault.Injector {
	return fault.New(seed,
		fault.Rule{Site: "serve.solve", Every: 17, Kind: fault.KindPanic, Msg: "chaos panic"},
		fault.Rule{Site: "serve.solve", Every: 13, Offset: 5, Kind: fault.KindError, Msg: "chaos error"},
		fault.Rule{Site: "serve.solve", Every: 7, Offset: 3, Kind: fault.KindDelay, Delay: 2 * time.Millisecond, Jitter: 3 * time.Millisecond},
		fault.Rule{Site: "serve.admit", Every: 29, Kind: fault.KindError, Msg: "admit fault"},
		fault.Rule{Site: "core.prep.stale", Every: 11, Kind: fault.KindError, Msg: "forced staleness"},
		fault.Rule{Site: "core.prep.build", Every: 5, Kind: fault.KindError, Msg: "rebuild fault"},
		fault.Rule{Site: "core.prep.compact", Every: 3, Kind: fault.KindError, Msg: "compaction fault"},
		fault.Rule{Site: "core.batch.tuple", Every: 23, Kind: fault.KindPanic, Msg: "batch chaos"},
	)
}

// wellFormed asserts invariant 2 for one response and returns the decoded
// solve body when the status was 200.
func wellFormed(t *testing.T, kind string, status int, raw []byte) *solveResponse {
	t.Helper()
	switch status {
	case http.StatusOK:
	case http.StatusBadRequest, http.StatusTooManyRequests, http.StatusInternalServerError,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		var e errorResponse
		if err := json.Unmarshal(raw, &e); err != nil || e.Error == "" {
			t.Errorf("%s: %d with malformed error body %q (%v)", kind, status, raw, err)
		}
		return nil
	default:
		t.Errorf("%s: unexpected status %d (body %q)", kind, status, raw)
		return nil
	}
	if kind == "batch" {
		var b batchResponse
		if err := json.Unmarshal(raw, &b); err != nil {
			t.Errorf("batch: malformed 200 body %q: %v", raw, err)
		}
		for i, item := range b.Results {
			if (item.Result == nil) == (item.Error == "") {
				t.Errorf("batch item %d: exactly one of result/error must be set: %+v", i, item)
			}
		}
		return nil
	}
	var s solveResponse
	if err := json.Unmarshal(raw, &s); err != nil {
		t.Errorf("%s: malformed 200 body %q: %v", kind, raw, err)
		return nil
	}
	if s.Solver == "" {
		t.Errorf("%s: 200 without solver name: %+v", kind, s)
	}
	// An estimated answer must carry its certified interval (and vice
	// versa), and its own point must sit inside it.
	if s.Estimated != (s.Estimate != nil) {
		t.Errorf("%s: estimated=%v but bounds=%v", kind, s.Estimated, s.Estimate)
	} else if s.Estimated && (s.Satisfied < s.Estimate.Lo || s.Satisfied > s.Estimate.Hi) {
		t.Errorf("%s: estimated point %d outside interval [%d,%d]", kind, s.Satisfied, s.Estimate.Lo, s.Estimate.Hi)
	}
	return &s
}

// storm fires requests from `clients` goroutines for one pass over the
// workload. With mutate set it also swaps and touches the log mid-storm; the
// greedy-floor check (invariant 3) only runs when the log is stable, since
// the baseline is defined per log generation.
func storm(t *testing.T, ts *httptest.Server, log *dataset.QueryLog, tuples []bitvec.Vector, seed int64, clients, perClient int, mutate bool) {
	t.Helper()
	baseline := make(map[string]int, len(tuples)*3)
	if !mutate {
		nonzero := 0
		for _, tuple := range tuples {
			for m := 4; m <= 6; m++ {
				b := greedyBaseline(t, log, tuple, m)
				baseline[fmt.Sprintf("%s/%d", tuple, m)] = b
				if b > 0 {
					nonzero++
				}
			}
		}
		// Queries carry 4–6 attributes, so m below 4 satisfies nothing and
		// would make the ≥-baseline invariant vacuous; guard against that.
		if nonzero == 0 {
			t.Fatal("every greedy baseline is zero; the ≥-baseline invariant checks nothing")
		}
	}
	client := ts.Client()
	post := func(path string, body any) (int, []byte) {
		b, _ := json.Marshal(body)
		resp, err := client.Post(ts.URL+path, "application/json", bytes.NewReader(b))
		if err != nil {
			t.Errorf("POST %s: %v", path, err)
			return 0, nil
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, raw
	}

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(c)))
			for i := 0; i < perClient; i++ {
				tuple := tuples[rng.Intn(len(tuples))]
				m := 4 + rng.Intn(3)
				switch op := rng.Intn(10); {
				case op < 6: // single solve, random tier
					algo := []string{"mfi-exact", "mfi", "greedy", "consumeattr", "ip"}[rng.Intn(5)]
					status, raw := post("/solve", solveRequest{
						Tuple: tuple.String(), M: m, Algo: algo, TimeoutMS: 50 + rng.Intn(200)})
					if s := wellFormed(t, "solve", status, raw); s != nil && !mutate && !s.Estimated {
						// Estimated answers promise a sound interval (checked
						// in wellFormed), not the exact-rung greedy floor.
						if base := baseline[fmt.Sprintf("%s/%d", tuple, m)]; s.Satisfied < base {
							t.Errorf("solve %s m=%d via %s (degraded=%v): satisfied %d < greedy baseline %d",
								tuple, m, s.Solver, s.Degraded, s.Satisfied, base)
						}
					}
				case op < 8: // batch
					specs := make([]string, 1+rng.Intn(4))
					for j := range specs {
						specs[j] = tuples[rng.Intn(len(tuples))].String()
					}
					status, raw := post("/solve/batch", batchRequest{
						Tuples: specs, M: m, TimeoutMS: 100 + rng.Intn(200), Workers: 1 + rng.Intn(4)})
					wellFormed(t, "batch", status, raw)
				case op < 9: // force staleness mid-flight
					if status, raw := post("/log/touch", struct{}{}); status != http.StatusOK {
						t.Errorf("touch: status %d body %q", status, raw)
					}
				default: // mutate the log (only in the mutating storm)
					if !mutate {
						status, raw := post("/solve", solveRequest{Tuple: tuple.String(), M: m, TimeoutMS: 100})
						wellFormed(t, "solve", status, raw)
						continue
					}
					status, raw := post("/log", appendRequest{Append: []string{tuple.String()}})
					if status != http.StatusOK {
						t.Errorf("append: status %d body %q", status, raw)
					}
				}
			}
		}(c)
	}
	wg.Wait()
}

// TestChaosStormStableLog is the main acceptance storm: heavy concurrent
// traffic, every fault kind firing, the log never mutated — so every 200
// must beat the greedy baseline, and the server must answer everything
// well-formed without dying.
func TestChaosStormStableLog(t *testing.T) {
	srv, ts, log, tuples := newTestServer(t, func(c *Config) {
		c.Injector = chaosInjector(1)
		c.MaxConcurrent = 4
		c.MaxQueue = 8
		c.ExactBudget = 50 * time.Millisecond
		c.MFIBudget = 5 * time.Millisecond
		c.GreedyReserve = 2 * time.Millisecond
	})
	// Touches are fired by the storm but appends are not: the log object
	// stays stable while its version churns, forcing stale-prep recovery.
	storm(t, ts, log, tuples, 100, 8, 25, false)
	if srv.met.requests.Value() == 0 {
		t.Fatal("storm sent no requests")
	}
	t.Logf("storm: requests=%d shed=%d degraded=%d panics=%d rebuilds=%d staleRetries=%d",
		srv.met.requests.Value(), srv.met.shed.Value(), srv.met.degraded.Value(),
		srv.met.panics.Value(), srv.met.prepRebuilds.Value(), srv.met.staleRetries.Value())
	// The injectors fire on schedule, so the hardening paths demonstrably ran.
	if srv.met.prepRebuilds.Value() == 0 {
		t.Error("chaos storm never exercised a prep rebuild")
	}
}

// TestChaosStormMutatingLog layers live log mutation (copy-on-write appends)
// on top of the fault storm. Baselines shift between generations, so this
// storm checks only well-formedness and survival.
func TestChaosStormMutatingLog(t *testing.T) {
	srv, ts, log, tuples := newTestServer(t, func(c *Config) {
		c.Injector = chaosInjector(2)
		c.MaxConcurrent = 4
		c.MaxQueue = 8
	})
	storm(t, ts, log, tuples, 200, 8, 25, true)
	if srv.met.logSwaps.Value() == 0 {
		t.Error("mutating storm performed no log swaps")
	}
	// The server is still healthy: a clean solve succeeds afterwards.
	status, raw := postJSON(t, ts.URL+"/solve", solveRequest{Tuple: tuples[0].String(), M: 2, TimeoutMS: 2000})
	if status != http.StatusOK && status != http.StatusInternalServerError {
		t.Fatalf("post-storm solve: status %d body %s", status, raw)
	}
}

// TestChaosCompactionFaultStorm makes EVERY segment compaction fail while
// the log mutates under load: each append's single-flight rebuild still
// produces a delta-extended prep, it just never merges, so the segmented
// index accretes one segment per append batch. Serving must absorb that —
// the compaction failure is not a request failure — and keep answering from
// the pre-compaction segments. A clean post-storm solve and a delta-build
// count prove the incremental path (not full rebuilds) carried the storm.
func TestChaosCompactionFaultStorm(t *testing.T) {
	srv, ts, log, tuples := newTestServer(t, func(c *Config) {
		c.Injector = fault.New(3,
			fault.Rule{Site: "core.prep.compact", Every: 1, Kind: fault.KindError, Msg: "compaction always fails"},
		)
		c.MaxConcurrent = 4
		c.MaxQueue = 8
	})
	storm(t, ts, log, tuples, 300, 8, 25, true)
	if srv.met.logSwaps.Value() == 0 {
		t.Error("compaction-fault storm performed no log swaps")
	}
	if srv.met.prepDeltas.Value() == 0 {
		t.Error("compaction-fault storm never took the delta-build path")
	}
	if p := srv.prep.snapshot(); p != nil && p.Delta() && p.Segments() < 2 {
		t.Errorf("every compaction failed yet the delta prep has %d segment(s); fault not exercised", p.Segments())
	}
	// The server is still healthy on the unmerged segments.
	status, raw := postJSON(t, ts.URL+"/solve", solveRequest{Tuple: tuples[0].String(), M: 4, TimeoutMS: 2000})
	if status != http.StatusOK {
		t.Fatalf("post-storm solve on unmerged segments: status %d body %s", status, raw)
	}
	var sol solveResponse
	if err := json.Unmarshal(raw, &sol); err != nil {
		t.Fatalf("post-storm solve body: %v", err)
	}
	if base := greedyBaseline(t, srv.CurrentLog(), tuples[0], 4); sol.Satisfied < base {
		t.Errorf("post-storm solve satisfied %d < greedy baseline %d", sol.Satisfied, base)
	}
	t.Logf("compaction-fault storm: swaps=%d deltas=%d rebuilds=%d", srv.met.logSwaps.Value(),
		srv.met.prepDeltas.Value(), srv.met.prepRebuilds.Value())
}

// TestChaosTimeoutStorm hammers the server with deadlines too short for the
// requested exact tier: every answer must be a degraded 200, a 504, or a
// shed — never a hang, never a malformed body.
func TestChaosTimeoutStorm(t *testing.T) {
	_, ts, log, tuples := newTestServer(t, func(c *Config) {
		c.ExactBudget = time.Hour // requested tier never fits
		c.MFIBudget = time.Millisecond
		c.GreedyReserve = time.Millisecond
	})
	var wg sync.WaitGroup
	for c := 0; c < 6; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				tuple := tuples[(c+i)%len(tuples)]
				status, raw := postJSON(t, ts.URL+"/solve",
					solveRequest{Tuple: tuple.String(), M: 5, Algo: "brute", TimeoutMS: 1 + i%30})
				s := wellFormed(t, "solve", status, raw)
				if s == nil {
					continue
				}
				if !s.Degraded {
					t.Errorf("brute under 1-30ms deadline served undegraded via %s", s.Solver)
				}
				if base := greedyBaseline(t, log, tuple, 5); s.Satisfied < base {
					t.Errorf("degraded satisfied %d < greedy baseline %d", s.Satisfied, base)
				}
			}
		}(c)
	}
	wg.Wait()
}

// TestSoak loops the chaos storms for -soak. `make soak` runs it for 30s
// under -race; with the default -soak=0 it exits immediately.
func TestSoak(t *testing.T) {
	if *soakFor <= 0 {
		t.Skip("soak disabled; run with -soak=30s (see `make soak`)")
	}
	deadline := time.Now().Add(*soakFor)
	round := int64(0)
	for time.Now().Before(deadline) {
		round++
		srv, ts, log, tuples := newTestServer(t, func(c *Config) {
			c.Injector = chaosInjector(round)
			c.MaxConcurrent = 4
			c.MaxQueue = 8
			c.ExactBudget = 50 * time.Millisecond
			c.MFIBudget = 5 * time.Millisecond
		})
		storm(t, ts, log, tuples, round, 6, 20, round%2 == 0)
		t.Logf("soak round %d: requests=%d shed=%d degraded=%d panics=%d",
			round, srv.met.requests.Value(), srv.met.shed.Value(),
			srv.met.degraded.Value(), srv.met.panics.Value())
		ts.Close()
		srv.Close()
	}
	if round == 0 {
		t.Fatal("soak deadline passed without a single round")
	}
}
