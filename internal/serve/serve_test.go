package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"standout/internal/bitvec"
	"standout/internal/core"
	"standout/internal/dataset"
	"standout/internal/fault"
	"standout/internal/gen"
	"standout/internal/obsv"
)

// testWorkload builds a small car-themed workload: a query log and candidate
// tuples to solve for.
func testWorkload(t *testing.T) (*dataset.QueryLog, []bitvec.Vector) {
	t.Helper()
	tab := gen.Cars(1, 150)
	log := gen.RealWorkload(tab, 2, 50)
	tuples := gen.PickTuples(tab, 3, 8)
	return log, tuples
}

// newTestServer builds a Server on a fresh registry plus an httptest server
// mounted on its handler. mut edits the config before New.
func newTestServer(t *testing.T, mut func(*Config)) (*Server, *httptest.Server, *dataset.QueryLog, []bitvec.Vector) {
	t.Helper()
	log, tuples := testWorkload(t)
	cfg := Config{Log: log, Registry: obsv.NewRegistry(), Seed: 42}
	if mut != nil {
		mut(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts, log, tuples
}

func postJSON(t *testing.T, url string, body any) (int, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp.StatusCode, out
}

func decode[T any](t *testing.T, raw []byte) T {
	t.Helper()
	var v T
	if err := json.Unmarshal(raw, &v); err != nil {
		t.Fatalf("decode %q: %v", raw, err)
	}
	return v
}

func greedyBaseline(t *testing.T, log *dataset.QueryLog, tuple bitvec.Vector, m int) int {
	t.Helper()
	sol, err := core.ConsumeAttrCumul{}.Solve(core.Instance{Log: log, Tuple: tuple, M: m})
	if err != nil {
		t.Fatalf("greedy baseline: %v", err)
	}
	return sol.Satisfied
}

func TestSolveEndpoint(t *testing.T) {
	_, ts, log, tuples := newTestServer(t, nil)
	for _, spec := range []string{tuples[0].String(), strings.Join(log.Schema.Names(tuples[0]), ",")} {
		status, raw := postJSON(t, ts.URL+"/solve", solveRequest{Tuple: spec, M: 5})
		if status != http.StatusOK {
			t.Fatalf("spec %q: status %d, body %s", spec, status, raw)
		}
		resp := decode[solveResponse](t, raw)
		if resp.Degraded {
			t.Fatalf("unloaded solve degraded: %+v", resp)
		}
		if resp.Solver != "mfi-exact" {
			t.Fatalf("default solver = %q, want mfi-exact", resp.Solver)
		}
		if base := greedyBaseline(t, log, tuples[0], 5); resp.Satisfied < base {
			t.Fatalf("exact satisfied %d < greedy baseline %d", resp.Satisfied, base)
		}
		if len(resp.Kept) > 5 {
			t.Fatalf("kept %d attrs, budget 5", len(resp.Kept))
		}
	}
}

func TestSolveValidation(t *testing.T) {
	_, ts, _, tuples := newTestServer(t, nil)
	bit := tuples[0].String()
	cases := []struct {
		name string
		req  any
		want int
	}{
		{"unknown algo", solveRequest{Tuple: bit, M: 2, Algo: "quantum"}, http.StatusBadRequest},
		{"bad tuple", solveRequest{Tuple: "NotAnAttr,AlsoNot", M: 2}, http.StatusBadRequest},
		{"wrong width", solveRequest{Tuple: "101", M: 2}, http.StatusBadRequest},
		{"negative m", solveRequest{Tuple: bit, M: -1}, http.StatusBadRequest},
		{"garbage body", "not json at all", http.StatusBadRequest},
	}
	for _, tc := range cases {
		status, raw := postJSON(t, ts.URL+"/solve", tc.req)
		if status != tc.want {
			t.Errorf("%s: status %d, want %d (body %s)", tc.name, status, tc.want, raw)
		}
		if e := decode[errorResponse](t, raw); e.Error == "" {
			t.Errorf("%s: empty error message", tc.name)
		}
	}
	resp, err := http.Get(ts.URL + "/solve")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /solve = %d, want 405", resp.StatusCode)
	}
}

func TestAdmissionShedsUnderOverload(t *testing.T) {
	inj := fault.New(7, fault.Rule{Site: "serve.solve", Kind: fault.KindDelay, Delay: 300 * time.Millisecond})
	srv, ts, _, tuples := newTestServer(t, func(c *Config) {
		c.MaxConcurrent = 1
		c.MaxQueue = 1
		c.Injector = inj
	})
	const n = 10
	statuses := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, raw := postJSON(t, ts.URL+"/solve", solveRequest{Tuple: tuples[i%len(tuples)].String(), M: 2})
			statuses[i] = status
			if status == http.StatusTooManyRequests {
				e := decode[errorResponse](t, raw)
				if e.RetryAfterMS <= 0 {
					t.Errorf("429 without retry_after_ms: %s", raw)
				}
			}
		}(i)
	}
	wg.Wait()
	shed, ok := 0, 0
	for _, s := range statuses {
		switch s {
		case http.StatusTooManyRequests:
			shed++
		case http.StatusOK:
			ok++
		default:
			t.Errorf("unexpected status %d under overload", s)
		}
	}
	if shed == 0 {
		t.Fatalf("no requests shed with 1 slot + 1 queue and %d concurrent callers", n)
	}
	if ok == 0 {
		t.Fatal("every request shed; admitted requests should still complete")
	}
	if got := srv.met.shed.Value(); got != int64(shed) {
		t.Fatalf("shed metric %d, want %d", got, shed)
	}
}

func TestDegradationLadder(t *testing.T) {
	_, ts, log, tuples := newTestServer(t, func(c *Config) {
		// Budget floors far above any feasible request deadline: every rung
		// above greedy is skipped and the ladder bottoms out.
		c.ExactBudget = time.Hour
		c.MFIBudget = time.Hour
	})
	status, raw := postJSON(t, ts.URL+"/solve",
		solveRequest{Tuple: tuples[1].String(), M: 5, Algo: "brute", TimeoutMS: 500})
	if status != http.StatusOK {
		t.Fatalf("status %d, body %s", status, raw)
	}
	resp := decode[solveResponse](t, raw)
	if !resp.Degraded {
		t.Fatalf("response not degraded: %+v", resp)
	}
	if resp.Solver != "greedy" {
		t.Fatalf("solver %q, want greedy", resp.Solver)
	}
	if base := greedyBaseline(t, log, tuples[1], 5); resp.Satisfied < base {
		t.Fatalf("degraded satisfied %d < greedy baseline %d", resp.Satisfied, base)
	}
}

func TestDegradedMFIBeatsGreedy(t *testing.T) {
	_, ts, log, tuples := newTestServer(t, func(c *Config) {
		c.ExactBudget = time.Hour // exact rung always skipped
		c.MFIBudget = time.Millisecond
	})
	status, raw := postJSON(t, ts.URL+"/solve",
		solveRequest{Tuple: tuples[2].String(), M: 4, Algo: "ip", TimeoutMS: 2000})
	if status != http.StatusOK {
		t.Fatalf("status %d, body %s", status, raw)
	}
	resp := decode[solveResponse](t, raw)
	if !resp.Degraded || resp.Solver != "mfi-exact" {
		t.Fatalf("want degraded mfi-exact, got %+v", resp)
	}
	if base := greedyBaseline(t, log, tuples[2], 4); resp.Satisfied < base {
		t.Fatalf("degraded satisfied %d < greedy baseline %d", resp.Satisfied, base)
	}
}

func TestPanicBecomesError(t *testing.T) {
	// Count=1: the first solve panics, everything after works — proving one
	// panic neither kills the process nor poisons later requests.
	inj := fault.New(11, fault.Rule{Site: "serve.solve", Kind: fault.KindPanic, Count: 1, Msg: "chaos"})
	srv, ts, _, tuples := newTestServer(t, func(c *Config) { c.Injector = inj })

	status, raw := postJSON(t, ts.URL+"/solve",
		solveRequest{Tuple: tuples[0].String(), M: 2, Algo: "greedy"})
	if status != http.StatusInternalServerError {
		t.Fatalf("panicking solve: status %d, body %s", status, raw)
	}
	if e := decode[errorResponse](t, raw); !e.Panic {
		t.Fatalf("500 body does not mark panic: %s", raw)
	}
	if srv.met.panics.Value() == 0 {
		t.Fatal("panic metric not incremented")
	}

	status, raw = postJSON(t, ts.URL+"/solve",
		solveRequest{Tuple: tuples[0].String(), M: 2, Algo: "greedy"})
	if status != http.StatusOK {
		t.Fatalf("solve after panic: status %d, body %s", status, raw)
	}
}

func TestPanicOnUpperRungDegrades(t *testing.T) {
	// The requested rung panics once; the ladder recovers it and serves a
	// degraded answer from a lower rung instead of failing the request.
	inj := fault.New(13, fault.Rule{Site: "serve.solve", Kind: fault.KindPanic, Count: 1})
	_, ts, log, tuples := newTestServer(t, func(c *Config) { c.Injector = inj })
	status, raw := postJSON(t, ts.URL+"/solve",
		solveRequest{Tuple: tuples[3].String(), M: 5, Algo: "mfi-exact", TimeoutMS: 2000})
	if status != http.StatusOK {
		t.Fatalf("status %d, body %s", status, raw)
	}
	resp := decode[solveResponse](t, raw)
	if !resp.Degraded || resp.Solver != "greedy" {
		t.Fatalf("want degraded greedy fallback, got %+v", resp)
	}
	if base := greedyBaseline(t, log, tuples[3], 5); resp.Satisfied < base {
		t.Fatalf("degraded satisfied %d < greedy baseline %d", resp.Satisfied, base)
	}
}

func TestBatchEndpoint(t *testing.T) {
	_, ts, log, tuples := newTestServer(t, nil)
	specs := []string{tuples[0].String(), "NotAnAttribute", tuples[1].String()}
	status, raw := postJSON(t, ts.URL+"/solve/batch", batchRequest{Tuples: specs, M: 5})
	if status != http.StatusOK {
		t.Fatalf("status %d, body %s", status, raw)
	}
	resp := decode[batchResponse](t, raw)
	if len(resp.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(resp.Results))
	}
	if resp.Results[1].Error == "" || resp.Results[1].Result != nil {
		t.Fatalf("malformed tuple not attributed: %+v", resp.Results[1])
	}
	for _, i := range []int{0, 2} {
		r := resp.Results[i].Result
		if r == nil {
			t.Fatalf("tuple %d failed: %+v", i, resp.Results[i])
		}
		tuple, m := tuples[0], 5
		if i == 2 {
			tuple = tuples[1]
		}
		if base := greedyBaseline(t, log, tuple, m); r.Satisfied < base {
			t.Fatalf("tuple %d satisfied %d < greedy baseline %d", i, r.Satisfied, base)
		}
	}
}

func TestBatchValidation(t *testing.T) {
	_, ts, _, tuples := newTestServer(t, func(c *Config) { c.MaxBatch = 2 })
	for name, req := range map[string]batchRequest{
		"empty":     {M: 2},
		"oversized": {Tuples: []string{tuples[0].String(), tuples[1].String(), tuples[2].String()}, M: 2},
		"bad algo":  {Tuples: []string{tuples[0].String()}, M: 2, Algo: "nope"},
	} {
		if status, raw := postJSON(t, ts.URL+"/solve/batch", req); status != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (body %s)", name, status, raw)
		}
	}
}

func TestLogAppendIsCopyOnWrite(t *testing.T) {
	srv, ts, log, tuples := newTestServer(t, nil)
	before := srv.CurrentLog()
	status, raw := postJSON(t, ts.URL+"/log", appendRequest{Append: []string{tuples[0].String(), tuples[1].String()}})
	if status != http.StatusOK {
		t.Fatalf("append: status %d, body %s", status, raw)
	}
	stats := decode[logResponse](t, raw)
	if stats.Queries != log.Size()+2 {
		t.Fatalf("appended log size %d, want %d", stats.Queries, log.Size()+2)
	}
	if srv.CurrentLog() == before {
		t.Fatal("append mutated in place; want copy-on-write swap")
	}
	if before.Size() != log.Size() {
		t.Fatalf("old generation grew to %d; in-flight snapshots are no longer consistent", before.Size())
	}
	// The new generation serves solves.
	if status, raw := postJSON(t, ts.URL+"/solve", solveRequest{Tuple: tuples[0].String(), M: 2}); status != http.StatusOK {
		t.Fatalf("solve after swap: status %d, body %s", status, raw)
	}
}

func TestTouchForcesRebuild(t *testing.T) {
	srv, ts, _, tuples := newTestServer(t, nil)
	if status, raw := postJSON(t, ts.URL+"/solve", solveRequest{Tuple: tuples[0].String(), M: 2}); status != http.StatusOK {
		t.Fatalf("warmup solve: %d %s", status, raw)
	}
	rebuilds := srv.met.prepRebuilds.Value()
	status, _ := postJSON(t, ts.URL+"/log/touch", struct{}{})
	if status != http.StatusOK {
		t.Fatalf("touch: status %d", status)
	}
	if status, raw := postJSON(t, ts.URL+"/solve", solveRequest{Tuple: tuples[1].String(), M: 2}); status != http.StatusOK {
		t.Fatalf("solve after touch: %d %s", status, raw)
	}
	if got := srv.met.prepRebuilds.Value(); got <= rebuilds {
		t.Fatalf("no prep rebuild after touch (rebuilds %d → %d)", rebuilds, got)
	}
}

func TestHealthAndReadiness(t *testing.T) {
	_, ts, _, _ := newTestServer(t, nil)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
	// readyz flips to 200 once the kick it issues finishes the index build.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			break
		}
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("readyz = %d, want 200 or 503", resp.StatusCode)
		}
		if time.Now().After(deadline) {
			t.Fatal("readyz never became ready")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts, _, tuples := newTestServer(t, nil)
	postJSON(t, ts.URL+"/solve", solveRequest{Tuple: tuples[0].String(), M: 2})
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		"standout_serve_requests_total 1",
		"# TYPE standout_serve_request_seconds histogram",
		"standout_serve_shed_total 0",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if err := obsv.LintProm(string(body)); err != nil {
		t.Errorf("metrics output fails lint: %v", err)
	}
}

func TestSwapRejectsWidthMismatch(t *testing.T) {
	srv, _, _, _ := newTestServer(t, nil)
	schema, err := dataset.NewSchema([]string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Swap(dataset.NewQueryLog(schema)); err == nil {
		t.Fatal("Swap accepted a log of a different width")
	}
}

func TestTimeoutClamp(t *testing.T) {
	s, _, _, _ := newTestServer(t, func(c *Config) {
		c.DefaultTimeout = 123 * time.Millisecond
		c.MaxTimeout = time.Second
	})
	for _, tc := range []struct {
		ms   int
		want time.Duration
	}{
		{0, 123 * time.Millisecond},
		{-5, 123 * time.Millisecond},
		{500, 500 * time.Millisecond},
		{50_000, time.Second},
	} {
		if got := s.timeoutFor(tc.ms); got != tc.want {
			t.Errorf("timeoutFor(%d) = %v, want %v", tc.ms, got, tc.want)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New accepted a nil log")
	}
	// A fresh server derives every unset knob.
	log, _ := testWorkload(t)
	s, err := New(Config{Log: log, Registry: obsv.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for name, v := range map[string]int{
		"MaxConcurrent": s.cfg.MaxConcurrent,
		"MaxQueue":      s.cfg.MaxQueue,
		"MaxBatch":      s.cfg.MaxBatch,
	} {
		if v <= 0 {
			t.Errorf("default %s = %d, want > 0", name, v)
		}
	}
	if s.cfg.DefaultTimeout <= 0 || s.cfg.MaxTimeout < s.cfg.DefaultTimeout {
		t.Errorf("default timeouts %v/%v inconsistent", s.cfg.DefaultTimeout, s.cfg.MaxTimeout)
	}
}

func TestAlgoNamesSortedAndComplete(t *testing.T) {
	names := AlgoNames()
	if len(names) != len(algorithms) {
		t.Fatalf("AlgoNames lists %d of %d algorithms", len(names), len(algorithms))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("AlgoNames not sorted: %v", names)
		}
	}
	// Every name constructs a working solver.
	for _, n := range names {
		if s := algorithms[n](2); s == nil {
			t.Fatalf("algorithm %q constructs nil", n)
		}
	}
}

func ExampleAlgoNames() {
	fmt.Println(strings.Join(AlgoNames(), " "))
	// Output: brute consumeattr consumeattrcumul consumequeries estimate greedy ilp ip mfi mfi-exact
}
