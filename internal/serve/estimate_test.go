package serve

import (
	"context"
	"net/http"
	"sync"
	"testing"
	"time"

	"standout/internal/bitvec"
	"standout/internal/core"
	"standout/internal/dataset"
	"standout/internal/fault"
	"standout/internal/gen"
)

// warmEstimator deterministically does what the background goroutine does
// after a prep build: forces the prep for the server's current log and warms
// its estimator model, so tests can pin ladder behaviour without racing the
// async warm.
func warmEstimator(t *testing.T, s *Server) {
	t.Helper()
	p, err := s.prep.get(context.Background(), s.CurrentLog())
	if err != nil {
		t.Fatalf("warm prep: %v", err)
	}
	if _, err := p.EstimatorModel(context.Background()); err != nil {
		t.Fatalf("warm estimator model: %v", err)
	}
}

// keptOf parses a response's kept bit string against the log schema.
func keptOf(t *testing.T, log *dataset.QueryLog, resp solveResponse) bitvec.Vector {
	t.Helper()
	kept, err := dataset.ParseTuple(log.Schema, resp.KeptBits)
	if err != nil {
		t.Fatalf("parse kept_bits %q: %v", resp.KeptBits, err)
	}
	return kept
}

// TestEstimateAlgoDirect: algo=estimate is requestable like any other solver
// and its 200 carries estimated:true plus a certified interval containing
// the exact weighted Satisfied count of the kept set it returned.
func TestEstimateAlgoDirect(t *testing.T) {
	_, ts, log, tuples := newTestServer(t, nil)
	status, raw := postJSON(t, ts.URL+"/solve",
		solveRequest{Tuple: tuples[0].String(), M: 4, Algo: "estimate"})
	if status != http.StatusOK {
		t.Fatalf("status %d, body %s", status, raw)
	}
	resp := decode[solveResponse](t, raw)
	if resp.Solver != "estimate" || resp.Degraded {
		t.Fatalf("solver %q degraded %v, want estimate/false", resp.Solver, resp.Degraded)
	}
	if !resp.Estimated || resp.Estimate == nil {
		t.Fatalf("estimate solve without estimated marker or bounds: %+v", resp)
	}
	if resp.Satisfied < resp.Estimate.Lo || resp.Satisfied > resp.Estimate.Hi {
		t.Fatalf("point %d outside own interval [%d,%d]", resp.Satisfied, resp.Estimate.Lo, resp.Estimate.Hi)
	}
	exact := log.Satisfied(keptOf(t, log, resp))
	if exact < resp.Estimate.Lo || exact > resp.Estimate.Hi {
		t.Fatalf("interval [%d,%d] misses exact %d", resp.Estimate.Lo, resp.Estimate.Hi, exact)
	}
}

// TestEstimateRungFiresBelowGreedyBudget pins the ladder's new bottom: with
// a warmed model and every floor above the request deadline — including
// greedy's — the estimate rung answers, degraded, with a sound interval.
func TestEstimateRungFiresBelowGreedyBudget(t *testing.T) {
	s, ts, log, tuples := newTestServer(t, func(c *Config) {
		c.ExactBudget = time.Hour
		c.MFIBudget = time.Hour
		c.GreedyBudget = time.Hour
	})
	warmEstimator(t, s)
	status, raw := postJSON(t, ts.URL+"/solve",
		solveRequest{Tuple: tuples[1].String(), M: 5, Algo: "brute", TimeoutMS: 500})
	if status != http.StatusOK {
		t.Fatalf("status %d, body %s", status, raw)
	}
	resp := decode[solveResponse](t, raw)
	if resp.Solver != "estimate" || !resp.Degraded {
		t.Fatalf("solver %q degraded %v, want estimate/true", resp.Solver, resp.Degraded)
	}
	if !resp.Estimated || resp.Estimate == nil {
		t.Fatalf("estimate rung answer missing marker/bounds: %+v", resp)
	}
	exact := log.Satisfied(keptOf(t, log, resp))
	if exact < resp.Estimate.Lo || exact > resp.Estimate.Hi {
		t.Fatalf("interval [%d,%d] misses exact %d", resp.Estimate.Lo, resp.Estimate.Hi, exact)
	}
	if s.met.estimated.Value() == 0 {
		t.Error("estimated counter not incremented")
	}
}

// TestEstimateRungAboveGreedyBudgetStaysGreedy: with a warmed model but a
// deadline comfortably above GreedyBudget, greedy still answers — the
// estimate rung only fires below greedy's floor.
func TestEstimateRungAboveGreedyBudgetStaysGreedy(t *testing.T) {
	s, ts, log, tuples := newTestServer(t, func(c *Config) {
		c.ExactBudget = time.Hour
		c.MFIBudget = time.Hour
		c.GreedyBudget = time.Millisecond
	})
	warmEstimator(t, s)
	status, raw := postJSON(t, ts.URL+"/solve",
		solveRequest{Tuple: tuples[1].String(), M: 5, Algo: "brute", TimeoutMS: 2000})
	if status != http.StatusOK {
		t.Fatalf("status %d, body %s", status, raw)
	}
	resp := decode[solveResponse](t, raw)
	if resp.Solver != "greedy" || !resp.Degraded {
		t.Fatalf("solver %q degraded %v, want greedy/true", resp.Solver, resp.Degraded)
	}
	if resp.Estimated || resp.Estimate != nil {
		t.Fatalf("greedy answer marked estimated: %+v", resp)
	}
	if exact := log.Satisfied(keptOf(t, log, resp)); resp.Satisfied != exact {
		t.Fatalf("greedy satisfied %d ≠ recount %d", resp.Satisfied, exact)
	}
}

// TestEstimateRungRequiresWarmModel: before any prep (and hence any model)
// exists, the ladder is exactly the pre-estimate chain — the very first
// request under hour-high floors bottoms out at greedy, never at an
// unwarmed estimate rung.
func TestEstimateRungRequiresWarmModel(t *testing.T) {
	_, ts, _, tuples := newTestServer(t, func(c *Config) {
		c.ExactBudget = time.Hour
		c.MFIBudget = time.Hour
		c.GreedyBudget = time.Hour
	})
	status, raw := postJSON(t, ts.URL+"/solve",
		solveRequest{Tuple: tuples[0].String(), M: 5, Algo: "brute", TimeoutMS: 500})
	if status != http.StatusOK {
		t.Fatalf("status %d, body %s", status, raw)
	}
	resp := decode[solveResponse](t, raw)
	if resp.Solver != "greedy" || resp.Estimated {
		t.Fatalf("first request solver %q estimated %v, want greedy/false", resp.Solver, resp.Estimated)
	}
}

// TestExactRungsStayExactOnWeightedLog is the regression gate for the rungs
// above estimate: on a weighted log, every non-estimated answer's Satisfied
// must equal the exact weighted recount, carry no bounds, and sit at or
// above the weighted greedy baseline — adding the estimate rung must not
// leak approximation into them.
func TestExactRungsStayExactOnWeightedLog(t *testing.T) {
	wlog, tuples := weightedWorkload(t, 11)
	s, ts, _, _ := newTestServer(t, func(c *Config) {
		c.Log = wlog
	})
	warmEstimator(t, s)
	for _, algo := range []string{"brute", "mfi-exact", "greedy", "consumeattrcumul"} {
		for _, tuple := range tuples[:4] {
			status, raw := postJSON(t, ts.URL+"/solve",
				solveRequest{Tuple: tuple.String(), M: 5, Algo: algo, TimeoutMS: 10000})
			if status != http.StatusOK {
				t.Fatalf("%s: status %d, body %s", algo, status, raw)
			}
			resp := decode[solveResponse](t, raw)
			if resp.Solver != algo || resp.Degraded {
				t.Fatalf("%s: served by %q degraded %v", algo, resp.Solver, resp.Degraded)
			}
			if resp.Estimated || resp.Estimate != nil {
				t.Fatalf("%s: exact rung marked estimated: %+v", algo, resp)
			}
			exact := wlog.Satisfied(keptOf(t, wlog, resp))
			if resp.Satisfied != exact {
				t.Fatalf("%s tuple %s: satisfied %d ≠ weighted recount %d", algo, tuple, resp.Satisfied, exact)
			}
			if base := greedyBaseline(t, wlog, tuple, 5); resp.Satisfied < base {
				t.Fatalf("%s tuple %s: satisfied %d < weighted greedy baseline %d", algo, tuple, resp.Satisfied, base)
			}
		}
	}
}

// TestShedEstimateServes200 is the shed-of-last-resort acceptance test: one
// solve slot, one queue slot, a slow solver, ten concurrent callers, and
// ShedEstimate on with a warmed model — every request comes back 200, the
// shed ones estimated with sound intervals, and not a single 429 escapes.
func TestShedEstimateServes200(t *testing.T) {
	s, ts, log, tuples := newTestServer(t, func(c *Config) {
		c.ShedEstimate = true
		c.MaxConcurrent = 1
		c.MaxQueue = 1
		c.Injector = fault.New(7, fault.Rule{
			Site: "serve.solve", Kind: fault.KindDelay, Delay: 100 * time.Millisecond})
	})
	warmEstimator(t, s)

	const n = 10
	statuses := make([]int, n)
	bodies := make([]solveResponse, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, raw := postJSON(t, ts.URL+"/solve",
				solveRequest{Tuple: tuples[i%len(tuples)].String(), M: 4, TimeoutMS: 5000})
			statuses[i] = status
			if status == http.StatusOK {
				bodies[i] = decode[solveResponse](t, raw)
			}
		}(i)
	}
	wg.Wait()

	estimated := 0
	for i, status := range statuses {
		if status != http.StatusOK {
			t.Errorf("request %d: status %d, want 200 (shed requests must be estimated, not 429)", i, status)
			continue
		}
		resp := bodies[i]
		if !resp.Estimated {
			continue // admitted: served exactly by the ladder
		}
		estimated++
		if resp.Solver != "estimate" || resp.Estimate == nil {
			t.Errorf("request %d: estimated response via %q bounds %v", i, resp.Solver, resp.Estimate)
			continue
		}
		exact := log.Satisfied(keptOf(t, log, resp))
		if exact < resp.Estimate.Lo || exact > resp.Estimate.Hi {
			t.Errorf("request %d: interval [%d,%d] misses exact %d", i, resp.Estimate.Lo, resp.Estimate.Hi, exact)
		}
	}
	if estimated == 0 {
		t.Fatalf("no requests shed-estimated with 1 slot + 1 queue and %d concurrent callers", n)
	}
	if estimated == n {
		t.Fatal("every request estimated; admitted requests should still solve exactly")
	}
	if got := s.met.shedEstimated.Value(); got != int64(estimated) {
		t.Fatalf("shedEstimated metric %d, want %d", got, estimated)
	}
	if got := s.met.shed.Value(); got != 0 {
		t.Fatalf("shed(429) metric %d, want 0: shed storm must end in estimated 200s", got)
	}
}

// TestShedEstimateDisabledStill429s: the flag off is the pre-estimate
// behaviour — overload sheds with 429 even when a model is warmed.
func TestShedEstimateDisabledStill429s(t *testing.T) {
	s, ts, _, tuples := newTestServer(t, func(c *Config) {
		c.MaxConcurrent = 1
		c.MaxQueue = 1
		c.Injector = fault.New(7, fault.Rule{
			Site: "serve.solve", Kind: fault.KindDelay, Delay: 100 * time.Millisecond})
	})
	warmEstimator(t, s)
	const n = 10
	var wg sync.WaitGroup
	var mu sync.Mutex
	shed := 0
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, _ := postJSON(t, ts.URL+"/solve",
				solveRequest{Tuple: tuples[i%len(tuples)].String(), M: 4, TimeoutMS: 5000})
			if status == http.StatusTooManyRequests {
				mu.Lock()
				shed++
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	if shed == 0 {
		t.Fatal("no 429s with ShedEstimate off under forced overload")
	}
	if got := s.met.shedEstimated.Value(); got != 0 {
		t.Fatalf("shedEstimated metric %d with the flag off", got)
	}
}

// TestEstimateBatchCarriesBounds: estimated answers surface identically
// through /solve/batch items.
func TestEstimateBatchCarriesBounds(t *testing.T) {
	_, ts, log, tuples := newTestServer(t, nil)
	specs := []string{tuples[0].String(), tuples[1].String()}
	status, raw := postJSON(t, ts.URL+"/solve/batch",
		batchRequest{Tuples: specs, M: 4, Algo: "estimate", TimeoutMS: 5000})
	if status != http.StatusOK {
		t.Fatalf("status %d, body %s", status, raw)
	}
	resp := decode[batchResponse](t, raw)
	if len(resp.Results) != len(specs) {
		t.Fatalf("got %d results, want %d", len(resp.Results), len(specs))
	}
	for i, item := range resp.Results {
		if item.Error != "" || item.Result == nil {
			t.Fatalf("item %d: error %q", i, item.Error)
		}
		r := item.Result
		if !r.Estimated || r.Estimate == nil {
			t.Fatalf("item %d: estimated batch item missing bounds: %+v", i, r)
		}
		exact := log.Satisfied(keptOf(t, log, *r))
		if exact < r.Estimate.Lo || exact > r.Estimate.Hi {
			t.Fatalf("item %d: interval [%d,%d] misses exact %d", i, r.Estimate.Lo, r.Estimate.Hi, exact)
		}
	}
}

// TestEstimateRungSurvivesLogSwap: after a copy-on-write append swaps the
// log, the old generation's model no longer matches — the ladder must not
// serve a stale interval. A degraded request right after the swap either
// re-bottoms at greedy (model not yet re-warmed) or serves an estimate whose
// interval is sound against the new log.
func TestEstimateRungSurvivesLogSwap(t *testing.T) {
	s, ts, _, tuples := newTestServer(t, func(c *Config) {
		c.ExactBudget = time.Hour
		c.MFIBudget = time.Hour
		c.GreedyBudget = time.Hour
	})
	warmEstimator(t, s)
	if status, raw := postJSON(t, ts.URL+"/log", appendRequest{Append: []string{tuples[2].String()}}); status != http.StatusOK {
		t.Fatalf("append: status %d body %s", status, raw)
	}
	newLog := s.CurrentLog()
	status, raw := postJSON(t, ts.URL+"/solve",
		solveRequest{Tuple: tuples[1].String(), M: 5, Algo: "brute", TimeoutMS: 2000})
	if status != http.StatusOK {
		t.Fatalf("status %d, body %s", status, raw)
	}
	resp := decode[solveResponse](t, raw)
	switch {
	case resp.Estimated:
		exact := newLog.Satisfied(keptOf(t, newLog, resp))
		if resp.Estimate == nil || exact < resp.Estimate.Lo || exact > resp.Estimate.Hi {
			t.Fatalf("post-swap estimate unsound: %+v vs exact %d", resp, exact)
		}
	case resp.Solver == "greedy":
		if exact := newLog.Satisfied(keptOf(t, newLog, resp)); resp.Satisfied != exact {
			t.Fatalf("post-swap greedy satisfied %d ≠ recount %d", resp.Satisfied, exact)
		}
	default:
		t.Fatalf("post-swap solver %q (degraded %v)", resp.Solver, resp.Degraded)
	}
}

// TestEstimateKeptMatchesGreedySelection: the estimate rung answers with
// ConsumeAttr's kept set — the interval is about the count, never about
// which attributes survive.
func TestEstimateKeptMatchesGreedySelection(t *testing.T) {
	_, ts, log, tuples := newTestServer(t, nil)
	tuple := tuples[3]
	status, raw := postJSON(t, ts.URL+"/solve",
		solveRequest{Tuple: tuple.String(), M: 4, Algo: "estimate"})
	if status != http.StatusOK {
		t.Fatalf("status %d, body %s", status, raw)
	}
	resp := decode[solveResponse](t, raw)
	sol, err := core.ConsumeAttr{}.Solve(core.Instance{Log: log, Tuple: tuple, M: 4})
	if err != nil {
		t.Fatal(err)
	}
	if kept := keptOf(t, log, resp); !kept.Equal(sol.Kept) {
		t.Fatalf("estimate kept %s, ConsumeAttr kept %s", kept, sol.Kept)
	}
}

// TestChaosStormShedEstimate extends the chaos acceptance storms: with
// ShedEstimate on and a starved admission gate, a full fault storm must
// still end shed requests in estimated 200s — the counter proves the path
// ran under panics, forced staleness and rebuild faults, and wellFormed
// (via storm) checks every estimated body carries a consistent interval.
func TestChaosStormShedEstimate(t *testing.T) {
	srv, ts, log, tuples := newTestServer(t, func(c *Config) {
		c.Injector = chaosInjector(3)
		c.ShedEstimate = true
		c.MaxConcurrent = 1
		c.MaxQueue = 2
		c.ExactBudget = 50 * time.Millisecond
		c.MFIBudget = 5 * time.Millisecond
		c.GreedyReserve = 2 * time.Millisecond
	})
	// The storm's forced touches and rebuild faults churn the prep, and the
	// shed path needs a warmed model for the current generation — re-warm
	// between rounds and keep storming until the path demonstrably fires.
	for round := 0; round < 5; round++ {
		warmEstimator(t, srv)
		storm(t, ts, log, tuples, 300+int64(round), 8, 25, false)
		if srv.met.shedEstimated.Value() > 0 {
			break
		}
	}
	if srv.met.requests.Value() == 0 {
		t.Fatal("storm sent no requests")
	}
	t.Logf("shed storm: requests=%d shed429=%d shedEstimated=%d estimated=%d degraded=%d",
		srv.met.requests.Value(), srv.met.shed.Value(), srv.met.shedEstimated.Value(),
		srv.met.estimated.Value(), srv.met.degraded.Value())
	if srv.met.shedEstimated.Value() == 0 {
		t.Error("chaos storm with ShedEstimate never answered a shed request with an estimate")
	}
}

// estimateGen keeps the gen import honest in this file and pins that the
// estimate algo also behaves on a synthetic log that is not the cars
// workload the other tests share.
func TestEstimateAlgoSyntheticLog(t *testing.T) {
	slog := gen.SyntheticWorkload(dataset.GenericSchema(10), 9, 200, gen.WorkloadOptions{})
	tuple := gen.RandomTuple(slog.Schema, 10, 0.6)
	_, ts, _, _ := newTestServer(t, func(c *Config) { c.Log = slog })
	status, raw := postJSON(t, ts.URL+"/solve",
		solveRequest{Tuple: tuple.String(), M: 3, Algo: "estimate"})
	if status != http.StatusOK {
		t.Fatalf("status %d, body %s", status, raw)
	}
	resp := decode[solveResponse](t, raw)
	if !resp.Estimated || resp.Estimate == nil {
		t.Fatalf("missing estimate marker/bounds: %+v", resp)
	}
	if exact := slog.Satisfied(keptOf(t, slog, resp)); exact < resp.Estimate.Lo || exact > resp.Estimate.Hi {
		t.Fatalf("interval [%d,%d] misses exact %d", resp.Estimate.Lo, resp.Estimate.Hi, exact)
	}
}
