package serve

import (
	"context"
	"errors"
	"sync/atomic"
)

// errShed reports that the admission queue was full: the request is rejected
// immediately (429 + Retry-After) instead of queueing into a latency cliff.
var errShed = errors.New("serve: admission queue full, request shed")

// admission is a bounded two-stage admission gate: up to `cap(slots)`
// requests solve concurrently, up to maxQueue more wait for a slot, and
// everything beyond that is shed on arrival. Shedding at the gate keeps the
// queue — and therefore queueing latency — bounded no matter the offered
// load, which is the difference between a slow server and a dead one.
type admission struct {
	slots    chan struct{}
	waiting  atomic.Int64
	maxQueue int64
	met      *metrics
}

func newAdmission(concurrent, maxQueue int, met *metrics) *admission {
	return &admission{
		slots:    make(chan struct{}, concurrent),
		maxQueue: int64(maxQueue),
		met:      met,
	}
}

// acquire takes a solve slot, waiting in the bounded queue if none is free.
// It returns errShed when the queue is full and ctx.Err() when the caller
// gives up first. Every successful acquire must be paired with release.
func (a *admission) acquire(ctx context.Context) error {
	select {
	case a.slots <- struct{}{}:
		a.met.inflight.Set(float64(len(a.slots)))
		return nil
	default:
	}
	if n := a.waiting.Add(1); n > a.maxQueue {
		a.waiting.Add(-1)
		return errShed
	}
	a.met.queueDepth.Set(float64(a.waiting.Load()))
	defer func() {
		a.met.queueDepth.Set(float64(a.waiting.Add(-1)))
	}()
	select {
	case a.slots <- struct{}{}:
		a.met.inflight.Set(float64(len(a.slots)))
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (a *admission) release() {
	<-a.slots
	a.met.inflight.Set(float64(len(a.slots)))
}

// depth reports the current number of queued requests.
func (a *admission) depth() int64 { return a.waiting.Load() }
