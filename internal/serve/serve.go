// Package serve is the hardened HTTP/JSON serving layer over the SOC-CB-QL
// solver stack: the paper's §VII online scenario — a seller submits a new
// tuple and wants its best m-attribute compression against a live query log
// — as a long-running service built to survive sustained traffic and
// misbehaving dependencies.
//
// Robustness model (DESIGN.md §10):
//
//   - Admission control: a bounded concurrency pool plus a bounded wait
//     queue; beyond that, requests are shed immediately with 429 and a
//     Retry-After hint instead of queueing into a latency collapse.
//   - Deadline propagation: every request's timeout (client-chosen, clamped)
//     flows as a context deadline into the solvers, which cancel promptly.
//   - Degradation ladder: when the remaining budget is too small for the
//     requested algorithm the server falls back exact → MFI-exact → greedy,
//     marks the response degraded:true, and names the solver actually used.
//     Every rung above greedy is exact, so degraded answers are never worse
//     than the greedy baseline.
//   - Panic isolation: a panicking solve (malformed instance, injected
//     chaos) is recovered into a 4xx/5xx response; sibling requests and the
//     process are untouched.
//   - Stale-prep recovery: the shared PreparedLog index is rebuilt
//     single-flight with jittered backoff when the query log is swapped
//     (POST /log, copy-on-write) or Touch'ed mid-flight; solves that caught
//     ErrStalePrep retry against the rebuilt index.
//
// Endpoints: POST /solve, POST /solve/batch, POST /score (additive counting
// oracle for the shard coordinator), GET /schema, GET /log, POST /log
// (append, copy-on-write swap), POST /log/touch (force staleness),
// GET /healthz, GET /readyz, GET /metrics.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"standout/internal/bitvec"
	"standout/internal/core"
	"standout/internal/dataset"
	"standout/internal/fault"
	"standout/internal/obsv"
)

// Config tunes a Server. The zero value of every field selects a sensible
// default; only Log is required.
type Config struct {
	// Log is the initial query log (required). The server owns it from New
	// on: mutate only through the /log endpoints or Swap.
	Log *dataset.QueryLog
	// MaxConcurrent bounds simultaneously solving requests; default
	// GOMAXPROCS.
	MaxConcurrent int
	// MaxQueue bounds requests waiting for a solve slot; beyond it requests
	// are shed with 429. Default 4 × MaxConcurrent.
	MaxQueue int
	// DefaultTimeout applies when a request names none; default 2s.
	DefaultTimeout time.Duration
	// MaxTimeout clamps client-requested timeouts; default 30s.
	MaxTimeout time.Duration
	// ExactBudget is the minimum remaining deadline budget for which an
	// exact rung (brute/ip/ilp) is attempted; default 250ms.
	ExactBudget time.Duration
	// MFIBudget is the same floor for the MFI-exact rung; default 25ms.
	MFIBudget time.Duration
	// GreedyReserve is the slice of budget an upper rung must leave for the
	// rungs below it; default 5ms.
	GreedyReserve time.Duration
	// GreedyBudget is the minimum remaining deadline budget for which the
	// greedy rung is attempted once a warmed estimator model exists for the
	// request's log generation; below it the ladder serves the itemset+LP
	// estimate rung (DESIGN.md §16) — a 200 carrying estimated:true and a
	// certified interval instead of a timeout. While no model is warmed,
	// greedy keeps its floor of zero. Default 1ms.
	GreedyBudget time.Duration
	// ShedEstimate answers admission-shed /solve requests with an estimated
	// 200 (no solve slot consumed: the estimator never touches the log or the
	// shared index) instead of a 429, when a warmed model for the request's
	// log generation exists. Off by default: shedding stays a hard 429 unless
	// opted in.
	ShedEstimate bool
	// RebuildRetries bounds prep rebuild attempts and stale-solve retries;
	// default 3.
	RebuildRetries int
	// RebuildBackoff is the base backoff between rebuild attempts (doubled
	// per attempt, plus seeded jitter); default 2ms.
	RebuildBackoff time.Duration
	// BatchWorkers bounds the workers of one /solve/batch request; default
	// MaxConcurrent.
	BatchWorkers int
	// SolverWorkers is the worker count handed to solvers with an internal
	// parallel mode (brute, ilp, mfi-exact); ≤ 0 means 1 (sequential).
	// Answers are bit-identical at any setting — the parallel engines are
	// deterministic (DESIGN.md §11) — so this only trades latency for CPU.
	SolverWorkers int
	// MaxBatch bounds tuples per /solve/batch request; default 4096.
	MaxBatch int
	// Seed drives backoff jitter; default 1.
	Seed int64
	// Registry receives the serve metrics and backs /metrics; default
	// obsv.Default.
	Registry *obsv.Registry
	// Injector, when non-nil, attaches deterministic fault injection to
	// every request and rebuild context (chaos testing).
	Injector *fault.Injector
	// FlightSize bounds the flight-recorder ring of completed-request
	// records; default 256, negative disables the recorder.
	FlightSize int
	// SlowThreshold marks requests at or above it as slow: always kept by
	// the recorder and logged at Warn; default 500ms.
	SlowThreshold time.Duration
	// SampleEvery keeps 1-in-N boring successes in the recorder (errored,
	// shed, degraded, panicked, faulted and slow requests are always kept);
	// default 1 (keep everything).
	SampleEvery int
	// Logger receives the structured slow-request log; default slog.Default.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 4 * c.MaxConcurrent
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 2 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 30 * time.Second
	}
	if c.ExactBudget <= 0 {
		c.ExactBudget = 250 * time.Millisecond
	}
	if c.MFIBudget <= 0 {
		c.MFIBudget = 25 * time.Millisecond
	}
	if c.GreedyReserve <= 0 {
		c.GreedyReserve = 5 * time.Millisecond
	}
	if c.GreedyBudget <= 0 {
		c.GreedyBudget = time.Millisecond
	}
	if c.RebuildRetries <= 0 {
		c.RebuildRetries = 3
	}
	if c.RebuildBackoff <= 0 {
		c.RebuildBackoff = 2 * time.Millisecond
	}
	if c.BatchWorkers <= 0 {
		c.BatchWorkers = c.MaxConcurrent
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 4096
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Registry == nil {
		c.Registry = obsv.Default
	}
	if c.FlightSize == 0 {
		c.FlightSize = 256
	}
	if c.SlowThreshold <= 0 {
		c.SlowThreshold = 500 * time.Millisecond
	}
	if c.SampleEvery < 1 {
		c.SampleEvery = 1
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	return c
}

// Server is the hardened solving service. Construct with New, mount
// Handler() on an http.Server, and Close when done.
type Server struct {
	cfg    Config
	met    *metrics
	adm    *admission
	prep   *prepCache
	mux    *http.ServeMux
	flight *obsv.Flight
	logger *slog.Logger

	baseCtx context.Context
	stop    context.CancelFunc

	mu  sync.Mutex // serializes log swaps
	log *dataset.QueryLog
}

// New validates cfg and returns a running Server (its prep index builds
// lazily on first use; readyz reports readiness).
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.Log == nil {
		return nil, errors.New("serve: Config.Log is required")
	}
	if err := cfg.Log.Validate(); err != nil {
		return nil, fmt.Errorf("serve: invalid query log: %w", err)
	}
	baseCtx, stop := context.WithCancel(context.Background())
	if cfg.Injector != nil {
		baseCtx = fault.WithInjector(baseCtx, cfg.Injector)
	}
	s := &Server{
		cfg:     cfg,
		met:     newMetrics(cfg.Registry),
		flight:  obsv.NewFlight(cfg.FlightSize, cfg.SlowThreshold, cfg.SampleEvery),
		logger:  cfg.Logger,
		baseCtx: baseCtx,
		stop:    stop,
		log:     cfg.Log,
	}
	s.adm = newAdmission(cfg.MaxConcurrent, cfg.MaxQueue, s.met)
	s.prep = newPrepCache(baseCtx, cfg.Seed, cfg.RebuildRetries, cfg.RebuildBackoff, s.met)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/solve", s.traced("/solve", s.recovered(s.handleSolve)))
	s.mux.HandleFunc("/solve/batch", s.traced("/solve/batch", s.recovered(s.handleBatch)))
	s.mux.HandleFunc("/score", s.traced("/score", s.recovered(s.handleScore)))
	s.mux.HandleFunc("/schema", s.handleSchema)
	s.mux.HandleFunc("/log", s.traced("/log", s.recovered(s.handleLog)))
	s.mux.HandleFunc("/log/touch", s.traced("/log/touch", s.recovered(s.handleTouch)))
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.Handle("/metrics", obsv.Handler(cfg.Registry))
	s.mux.Handle("/debug/requests", s.flight.Handler())
	s.mux.Handle("/debug/requests/", s.flight.Handler())
	return s, nil
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Close stops background work (in-flight rebuild sleeps, readiness kicks).
// In-flight requests finish on their own deadlines.
func (s *Server) Close() { s.stop() }

// CurrentLog returns the log generation new requests solve against.
func (s *Server) CurrentLog() *dataset.QueryLog {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.log
}

// Swap atomically replaces the query log for new requests (in-flight
// requests finish against their snapshot) and invalidates the shared index.
func (s *Server) Swap(log *dataset.QueryLog) error {
	if err := log.Validate(); err != nil {
		return err
	}
	s.mu.Lock()
	if log.Width() != s.log.Width() {
		w, cw := log.Width(), s.log.Width()
		s.mu.Unlock()
		return fmt.Errorf("serve: new log width %d does not match current width %d", w, cw)
	}
	s.log = log
	s.mu.Unlock()
	s.met.logSwaps.Add(1)
	return nil
}

// reqCtx derives a request's working context: the client context plus the
// server's fault injector.
func (s *Server) reqCtx(r *http.Request) context.Context {
	ctx := r.Context()
	if s.cfg.Injector != nil {
		ctx = fault.WithInjector(ctx, s.cfg.Injector)
	}
	return ctx
}

// recovered is the outermost panic boundary: anything that escapes a handler
// (handler bugs, panics outside the solve path's own boundary) becomes a 500
// instead of killing the connection and, under http.Server's default
// behavior, leaving a half-dead process.
func (s *Server) recovered(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				s.met.panics.Add(1)
				s.met.failures.Add(1)
				info := noteInfo(r.Context())
				info.panicked = true
				info.errMsg = fmt.Sprintf("panic: %v", rec)
				writeJSON(r.Context(), w, http.StatusInternalServerError, errorResponse{
					Error: fmt.Sprintf("panic: %v", rec), Panic: true,
				})
				_ = debug.Stack() // keep the capture cheap but explicit
			}
		}()
		h(w, r)
	}
}

// Request/response bodies.

type solveRequest struct {
	// Tuple is a 0/1 bit string of the schema width or a comma-separated
	// attribute-name list.
	Tuple string `json:"tuple"`
	// M is the attribute budget.
	M int `json:"m"`
	// Algo selects the algorithm; default "mfi-exact". See AlgoNames.
	Algo string `json:"algo,omitempty"`
	// TimeoutMS bounds the solve; 0 means the server default, values above
	// the server maximum are clamped.
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

type solveResponse struct {
	// TraceID echoes the request's distributed trace ID (also in the
	// X-Request-Id and traceparent response headers).
	TraceID   string   `json:"trace_id,omitempty"`
	Kept      []string `json:"kept"`
	KeptBits  string   `json:"kept_bits"`
	Satisfied int      `json:"satisfied"`
	Optimal   bool     `json:"optimal"`
	// Degraded reports that the deadline ladder served a cheaper solver than
	// requested; Solver names the rung that produced the answer.
	Degraded bool   `json:"degraded"`
	Solver   string `json:"solver"`
	// Estimated reports that Satisfied is a certified point estimate from the
	// itemset+LP rung (DESIGN.md §16) rather than an exact count; Estimate
	// then carries the interval containing the exact count.
	Estimated bool            `json:"estimated,omitempty"`
	Estimate  *estimateBounds `json:"estimate,omitempty"`
	ElapsedMS float64         `json:"elapsed_ms"`
}

// estimateBounds certifies lo ≤ exact satisfied count ≤ hi for an estimated
// response, against the log generation the estimator model summarized.
type estimateBounds struct {
	Lo int `json:"lo"`
	Hi int `json:"hi"`
}

// boundsOf extracts an estimated solution's certified interval, nil for
// exact solutions.
func boundsOf(sol core.Solution) *estimateBounds {
	if !sol.Estimated {
		return nil
	}
	return &estimateBounds{Lo: sol.EstLo, Hi: sol.EstHi}
}

type batchRequest struct {
	Tuples    []string `json:"tuples"`
	M         int      `json:"m"`
	Algo      string   `json:"algo,omitempty"`
	TimeoutMS int      `json:"timeout_ms,omitempty"`
	Workers   int      `json:"workers,omitempty"`
}

type batchItem struct {
	// Exactly one of Result and Error is set per tuple.
	Result *solveResponse `json:"result,omitempty"`
	Error  string         `json:"error,omitempty"`
}

type batchResponse struct {
	TraceID string      `json:"trace_id,omitempty"`
	Results []batchItem `json:"results"`
	// Error carries the batch-level failure (first failing tuple), if any;
	// Results still holds everything that completed before cancellation.
	Error     string  `json:"error,omitempty"`
	Degraded  bool    `json:"degraded"`
	Solver    string  `json:"solver"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

type logResponse struct {
	Queries     int    `json:"queries"`
	TotalWeight int    `json:"total_weight"`
	Width       int    `json:"width"`
	Version     uint64 `json:"version"`
	Fingerprint string `json:"fingerprint"`
}

type appendRequest struct {
	Append []string `json:"append"`
	// Weights optionally assigns a multiplicity ≥ 1 to each appended query
	// (len must equal len(Append)); omitted means every query counts once.
	// Weighted entries are how a log summarizer (internal/compact) feeds its
	// folded duplicates back into a serving log.
	Weights []int `json:"weights,omitempty"`
}

type errorResponse struct {
	// TraceID echoes the request's distributed trace ID, so error reports
	// can be joined with /debug/requests records and histogram exemplars.
	TraceID string `json:"trace_id,omitempty"`
	Error   string `json:"error"`
	Panic   bool   `json:"panic,omitempty"`
	// RetryAfterMS accompanies 429 shed responses.
	RetryAfterMS int `json:"retry_after_ms,omitempty"`
}

// writeJSON writes the response body, stamping the request's trace ID into
// body types that carry one (solve, batch and error responses).
func writeJSON(ctx context.Context, w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(stamp(ctx, v))
}

// timeoutFor clamps the request's timeout wish into (0, MaxTimeout].
func (s *Server) timeoutFor(ms int) time.Duration {
	d := time.Duration(ms) * time.Millisecond
	if d <= 0 {
		d = s.cfg.DefaultTimeout
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return d
}

// admitErr runs the admission gate for one request: nil means a slot was
// acquired (the caller must release it), errShed means the queue was full,
// anything else is a 503-worthy failure.
func (s *Server) admitErr(ctx context.Context) error {
	if err := fault.Hit(ctx, "serve.admit"); err != nil {
		return err
	}
	return s.adm.acquire(ctx)
}

// writeAdmitError maps an admission failure to its response: a full queue is
// a 429 with a Retry-After hint, anything else a 503.
func (s *Server) writeAdmitError(ctx context.Context, w http.ResponseWriter, err error) {
	if errors.Is(err, errShed) {
		s.met.shed.Add(1)
		noteInfo(ctx).shed = true
		w.Header().Set("Retry-After", "1")
		writeJSON(ctx, w, http.StatusTooManyRequests, errorResponse{
			Error: "overloaded: admission queue full", RetryAfterMS: 1000,
		})
		return
	}
	s.met.failures.Add(1)
	noteInfo(ctx).errMsg = err.Error()
	writeJSON(ctx, w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
}

// admit runs the admission gate for one request, returning false after
// writing the 429/503 response itself.
func (s *Server) admit(ctx context.Context, w http.ResponseWriter) bool {
	if err := s.admitErr(ctx); err != nil {
		s.writeAdmitError(ctx, w, err)
		return false
	}
	return true
}

// shedEstimate is the shed-of-last-resort path (Config.ShedEstimate): an
// admission-shed solve request is answered 200 with the estimator's
// certified interval when a warmed model for the request's log generation
// exists. No solve slot is consumed — the estimator touches neither the log
// nor the shared index, so serving it cannot deepen the overload. Returns
// false (leaving the 429 to the caller) when the path is disabled, no model
// is warmed, or the estimate itself fails.
func (s *Server) shedEstimate(ctx context.Context, w http.ResponseWriter, log *dataset.QueryLog, tuple bitvec.Vector, m int, algo string, timeoutMS int) bool {
	if !s.cfg.ShedEstimate {
		return false
	}
	r, ok := s.estimateRung(log)
	if !ok {
		return false
	}
	ctx, cancel := context.WithTimeout(ctx, s.timeoutFor(timeoutMS))
	defer cancel()
	start := time.Now()
	sol, err := s.safeSolve(ctx, func(ctx context.Context) (core.Solution, error) {
		return r.solver.SolveContext(ctx, core.Instance{Log: log, Tuple: tuple, M: m})
	})
	if err != nil {
		return false
	}
	elapsed := time.Since(start)
	s.met.latency.ObserveExemplar(elapsed.Seconds(), obsv.TraceIDStringFromContext(ctx))
	s.met.shedEstimated.Add(1)
	s.met.estimated.Add(1)
	degraded := algo != "estimate"
	if degraded {
		s.met.degraded.Add(1)
	}
	info := noteInfo(ctx)
	info.algo, info.solver, info.degraded = algo, "estimate", degraded
	writeJSON(ctx, w, http.StatusOK, solveResponse{
		Kept:      sol.AttrNames(log.Schema),
		KeptBits:  sol.Kept.String(),
		Satisfied: sol.Satisfied,
		Optimal:   sol.Optimal,
		Degraded:  degraded,
		Solver:    "estimate",
		Estimated: sol.Estimated,
		Estimate:  boundsOf(sol),
		ElapsedMS: float64(elapsed) / float64(time.Millisecond),
	})
	return true
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(r.Context(), w, http.StatusMethodNotAllowed, errorResponse{Error: "POST only"})
		return
	}
	s.met.requests.Add(1)
	var req solveRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		writeJSON(r.Context(), w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
		return
	}
	log := s.CurrentLog()
	tuple, algo, status, errMsg := s.validateSolve(log, req.Tuple, req.M, req.Algo)
	if status != 0 {
		writeJSON(r.Context(), w, status, errorResponse{Error: errMsg})
		return
	}

	ctx := s.reqCtx(r)
	if err := s.admitErr(ctx); err != nil {
		if errors.Is(err, errShed) && s.shedEstimate(ctx, w, log, tuple, req.M, algo, req.TimeoutMS) {
			return
		}
		s.writeAdmitError(ctx, w, err)
		return
	}
	defer s.adm.release()

	ctx, cancel := context.WithTimeout(ctx, s.timeoutFor(req.TimeoutMS))
	defer cancel()

	start := time.Now()
	sol, used, degraded, err := s.solveLadder(ctx, algo, log, tuple, req.M)
	elapsed := time.Since(start)
	s.met.latency.ObserveExemplar(elapsed.Seconds(), obsv.TraceIDStringFromContext(ctx))
	info := noteInfo(ctx)
	info.algo, info.solver, info.degraded = algo, used, degraded
	if err != nil {
		s.writeSolveError(ctx, w, err)
		return
	}
	if degraded {
		s.met.degraded.Add(1)
	}
	if sol.Estimated {
		s.met.estimated.Add(1)
	}
	writeJSON(r.Context(), w, http.StatusOK, solveResponse{
		Kept:      sol.AttrNames(log.Schema),
		KeptBits:  sol.Kept.String(),
		Satisfied: sol.Satisfied,
		Optimal:   sol.Optimal,
		Degraded:  degraded,
		Solver:    used,
		Estimated: sol.Estimated,
		Estimate:  boundsOf(sol),
		ElapsedMS: float64(elapsed) / float64(time.Millisecond),
	})
}

// validateSolve checks the parseable parts of a solve request against the
// log snapshot; a non-zero status reports the 4xx to return.
func (s *Server) validateSolve(log *dataset.QueryLog, tupleSpec string, m int, algo string) (bitvec.Vector, string, int, string) {
	if algo == "" {
		algo = "mfi-exact"
	}
	if _, ok := algorithms[algo]; !ok {
		return bitvec.Vector{}, "", http.StatusBadRequest,
			fmt.Sprintf("unknown algo %q (have %v)", algo, AlgoNames())
	}
	if m < 0 {
		return bitvec.Vector{}, "", http.StatusBadRequest, fmt.Sprintf("negative budget m=%d", m)
	}
	tuple, err := dataset.ParseTuple(log.Schema, tupleSpec)
	if err != nil {
		return bitvec.Vector{}, "", http.StatusBadRequest, "bad tuple: " + err.Error()
	}
	return tuple, algo, 0, ""
}

// writeSolveError maps a ladder failure to a response: deadline exhaustion
// is 504, client cancellation 503, panics and injected faults 500 — always a
// well-formed JSON body, never a hung or half-written connection.
func (s *Server) writeSolveError(ctx context.Context, w http.ResponseWriter, err error) {
	info := noteInfo(ctx)
	info.errMsg = err.Error()
	var pe *core.PanicError
	switch {
	case errors.As(err, &pe):
		s.met.failures.Add(1)
		info.panicked = true
		writeJSON(ctx, w, http.StatusInternalServerError, errorResponse{Error: err.Error(), Panic: true})
	case errors.Is(err, context.DeadlineExceeded):
		s.met.timeouts.Add(1)
		writeJSON(ctx, w, http.StatusGatewayTimeout, errorResponse{Error: "deadline exceeded before any rung completed"})
	case errors.Is(err, context.Canceled):
		writeJSON(ctx, w, http.StatusServiceUnavailable, errorResponse{Error: "request canceled"})
	default:
		s.met.failures.Add(1)
		writeJSON(ctx, w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
	}
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(r.Context(), w, http.StatusMethodNotAllowed, errorResponse{Error: "POST only"})
		return
	}
	s.met.requests.Add(1)
	var req batchRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20)).Decode(&req); err != nil {
		writeJSON(r.Context(), w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
		return
	}
	if len(req.Tuples) == 0 {
		writeJSON(r.Context(), w, http.StatusBadRequest, errorResponse{Error: "empty tuples"})
		return
	}
	if len(req.Tuples) > s.cfg.MaxBatch {
		writeJSON(r.Context(), w, http.StatusBadRequest, errorResponse{
			Error: fmt.Sprintf("batch of %d exceeds limit %d", len(req.Tuples), s.cfg.MaxBatch)})
		return
	}
	log := s.CurrentLog()
	if req.Algo == "" {
		req.Algo = "mfi-exact"
	}
	if _, ok := algorithms[req.Algo]; !ok {
		writeJSON(r.Context(), w, http.StatusBadRequest, errorResponse{
			Error: fmt.Sprintf("unknown algo %q (have %v)", req.Algo, AlgoNames())})
		return
	}
	if req.M < 0 {
		writeJSON(r.Context(), w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("negative budget m=%d", req.M)})
		return
	}

	// Per-tuple parse errors are attributed without poisoning the batch:
	// only well-formed tuples are dispatched to the solver pool.
	items := make([]batchItem, len(req.Tuples))
	var tuples []bitvec.Vector
	var solveIdx []int
	for i, spec := range req.Tuples {
		tuple, err := dataset.ParseTuple(log.Schema, spec)
		if err != nil {
			items[i] = batchItem{Error: "bad tuple: " + err.Error()}
			continue
		}
		tuples = append(tuples, tuple)
		solveIdx = append(solveIdx, i)
	}

	ctx := s.reqCtx(r)
	if !s.admit(ctx, w) {
		return
	}
	defer s.adm.release()

	ctx, cancel := context.WithTimeout(ctx, s.timeoutFor(req.TimeoutMS))
	defer cancel()

	// The ladder is applied once for the whole batch: a budget too small for
	// the requested tier degrades every tuple to a cheaper exact-or-greedy
	// solver rather than letting the deadline kill the batch midway.
	algo, degraded := s.batchAlgo(ctx, req.Algo)
	solver := algorithms[algo](s.cfg.SolverWorkers)

	workers := req.Workers
	if workers <= 0 || workers > s.cfg.BatchWorkers {
		workers = s.cfg.BatchWorkers
	}

	start := time.Now()
	var sols []core.Solution
	var errs []error
	var batchErr error
	if len(tuples) > 0 {
		pctx := ctx
		if p, perr := s.prep.get(ctx, log); perr == nil {
			pctx = core.WithPrepared(ctx, p)
		}
		sols, errs, batchErr = core.SolveBatchContext(pctx, solver, log, tuples, req.M, workers)
	}
	elapsed := time.Since(start)
	s.met.latency.ObserveExemplar(elapsed.Seconds(), obsv.TraceIDStringFromContext(ctx))
	info := noteInfo(ctx)
	info.algo, info.solver, info.degraded = req.Algo, algo, degraded

	if batchErr != nil && len(sols) == 0 && errors.Is(batchErr, context.DeadlineExceeded) {
		s.met.timeouts.Add(1)
		info.errMsg = "batch deadline exceeded"
		writeJSON(r.Context(), w, http.StatusGatewayTimeout, errorResponse{Error: "batch deadline exceeded"})
		return
	}

	resp := batchResponse{
		Results:   items,
		Degraded:  degraded,
		Solver:    algo,
		ElapsedMS: float64(elapsed) / float64(time.Millisecond),
	}
	if degraded {
		s.met.degraded.Add(1)
	}
	completed := 0
	for k, i := range solveIdx {
		switch {
		case errs != nil && errs[k] != nil:
			items[i] = batchItem{Error: errs[k].Error()}
		case sols != nil && sols[k].Kept.Width() != 0:
			completed++
			items[i] = batchItem{Result: &solveResponse{
				Kept:      sols[k].AttrNames(log.Schema),
				KeptBits:  sols[k].Kept.String(),
				Satisfied: sols[k].Satisfied,
				Optimal:   sols[k].Optimal,
				Degraded:  degraded,
				Solver:    algo,
				Estimated: sols[k].Estimated,
				Estimate:  boundsOf(sols[k]),
			}}
		default:
			items[i] = batchItem{Error: "skipped: batch canceled before this tuple was attempted"}
		}
	}
	if batchErr != nil {
		resp.Error = batchErr.Error()
		info.errMsg = batchErr.Error()
		var pe *core.PanicError
		if errors.As(batchErr, &pe) {
			s.met.panics.Add(1)
			info.panicked = true
		}
	}
	writeJSON(r.Context(), w, http.StatusOK, resp)
}

// batchAlgo picks the batch's solver tier from the remaining budget: the
// requested tier when it fits, else the best tier whose floor fits.
func (s *Server) batchAlgo(ctx context.Context, algo string) (string, bool) {
	deadline, ok := ctx.Deadline()
	if !ok || greedyNames[algo] {
		return algo, false
	}
	remaining := time.Until(deadline)
	floor := s.cfg.ExactBudget
	if greedyNames[algo] {
		floor = 0
	} else if algo == "mfi" || algo == "mfi-exact" {
		floor = s.cfg.MFIBudget
	}
	if remaining >= floor {
		return algo, false
	}
	if remaining >= s.cfg.MFIBudget {
		return "mfi-exact", true
	}
	return "greedy", true
}

func (s *Server) handleLog(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		log := s.CurrentLog()
		writeJSON(r.Context(), w, http.StatusOK, logStats(log))
	case http.MethodPost:
		var req appendRequest
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20)).Decode(&req); err != nil {
			writeJSON(r.Context(), w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
			return
		}
		if len(req.Append) == 0 {
			writeJSON(r.Context(), w, http.StatusBadRequest, errorResponse{Error: "empty append"})
			return
		}
		if req.Weights != nil && len(req.Weights) != len(req.Append) {
			writeJSON(r.Context(), w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf(
				"weights length %d does not match append length %d", len(req.Weights), len(req.Append))})
			return
		}
		// Copy-on-write via Extend: in-flight requests keep solving their
		// snapshot; new requests see the new generation, whose recorded
		// lineage lets the single-flight rebuild extend the previous index
		// with a delta segment instead of re-indexing from scratch.
		s.mu.Lock()
		old := s.log
		next := old.Extend()
		for i, spec := range req.Append {
			q, err := dataset.ParseTuple(old.Schema, spec)
			if err != nil {
				s.mu.Unlock()
				writeJSON(r.Context(), w, http.StatusBadRequest, errorResponse{Error: "bad query: " + err.Error()})
				return
			}
			weight := 1
			if req.Weights != nil {
				weight = req.Weights[i]
			}
			if err := next.AppendWeighted(q, weight); err != nil {
				s.mu.Unlock()
				writeJSON(r.Context(), w, http.StatusBadRequest, errorResponse{Error: "bad query: " + err.Error()})
				return
			}
		}
		s.log = next
		s.mu.Unlock()
		s.met.logSwaps.Add(1)
		writeJSON(r.Context(), w, http.StatusOK, logStats(next))
	default:
		w.Header().Set("Allow", "GET, POST")
		writeJSON(r.Context(), w, http.StatusMethodNotAllowed, errorResponse{Error: "GET or POST only"})
	}
}

// handleTouch bumps the current log's version — the deliberate staleness
// lever: every in-flight prep solve observes ErrStalePrep and the
// single-flight rebuild path re-indexes. Chaos tests use it to force
// cache-rebuild races; operators use it after out-of-band log edits.
func (s *Server) handleTouch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(r.Context(), w, http.StatusMethodNotAllowed, errorResponse{Error: "POST only"})
		return
	}
	log := s.CurrentLog()
	log.Touch()
	writeJSON(r.Context(), w, http.StatusOK, logStats(log))
}

func logStats(log *dataset.QueryLog) logResponse {
	return logResponse{
		Queries:     log.Size(),
		TotalWeight: log.TotalWeight(),
		Width:       log.Width(),
		Version:     log.Version(),
		Fingerprint: fmt.Sprintf("%016x", log.Fingerprint()),
	}
}

// handleHealthz is liveness: the process is up and serving HTTP.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(r.Context(), w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz is readiness: the shared index matches the current log
// generation and the admission queue has room. When the index is missing or
// stale it kicks a background single-flight build and reports 503 so load
// balancers drain to warmed replicas.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if err := s.baseCtx.Err(); err != nil {
		writeJSON(r.Context(), w, http.StatusServiceUnavailable, map[string]string{"status": "shutting down"})
		return
	}
	log := s.CurrentLog()
	if p := s.prep.snapshot(); usable(p, log) {
		writeJSON(r.Context(), w, http.StatusOK, map[string]any{"status": "ready", "queue_depth": s.adm.depth()})
		return
	}
	go func() { _, _ = s.prep.get(s.baseCtx, log) }()
	writeJSON(r.Context(), w, http.StatusServiceUnavailable, map[string]string{"status": "index not ready"})
}
