package serve

import (
	"bytes"
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"standout/internal/fault"
	"standout/internal/obsv"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files from current output")

// postJSONH is postJSON plus request headers; it returns the response headers
// too, for trace-propagation assertions.
func postJSONH(t *testing.T, url string, body any, hdr map[string]string) (int, []byte, http.Header) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp.StatusCode, out, resp.Header
}

func getBody(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp.StatusCode, out
}

// TestTraceContextEndToEnd is the tentpole acceptance path inside the serve
// package: an inbound W3C traceparent is honored, echoed on the response
// (headers and body), attached to the flight-recorder record, and visible as
// an exemplar on the latency histogram.
func TestTraceContextEndToEnd(t *testing.T) {
	_, ts, _, tuples := newTestServer(t, nil)
	const inTrace = "0af7651916cd43dd8448eb211c80319c"
	inbound := "00-" + inTrace + "-b7ad6b7169203331-01"

	status, raw, hdr := postJSONH(t, ts.URL+"/solve",
		solveRequest{Tuple: tuples[0].String(), M: 5},
		map[string]string{"traceparent": inbound})
	if status != http.StatusOK {
		t.Fatalf("solve status %d: %s", status, raw)
	}

	// Headers: the request id is the inbound trace id; the echoed traceparent
	// keeps the trace id but carries this server's own (fresh) span id.
	if got := hdr.Get("X-Request-Id"); got != inTrace {
		t.Fatalf("X-Request-Id = %q, want %q", got, inTrace)
	}
	tp := hdr.Get("traceparent")
	gotT, gotS, err := obsv.ParseTraceparent(tp)
	if err != nil {
		t.Fatalf("response traceparent %q: %v", tp, err)
	}
	if gotT.String() != inTrace {
		t.Fatalf("response trace id %s, want %s", gotT, inTrace)
	}
	if gotS.String() == "b7ad6b7169203331" {
		t.Fatal("server echoed the caller's span id instead of minting its own")
	}

	// Body: the trace id rides the solve response.
	body := decode[solveResponse](t, raw)
	if body.TraceID != inTrace {
		t.Fatalf("body trace_id = %q, want %q", body.TraceID, inTrace)
	}

	// Flight recorder: the record is retrievable by trace id and carries the
	// solver attribution and the trace summary.
	code, recRaw := getBody(t, ts.URL+"/debug/requests/"+inTrace)
	if code != http.StatusOK {
		t.Fatalf("/debug/requests/{id} status %d: %s", code, recRaw)
	}
	rec := decode[obsv.Record](t, recRaw)
	if rec.TraceID != inTrace || rec.Route != "/solve" || rec.Status != http.StatusOK {
		t.Fatalf("flight record = %+v", rec)
	}
	if rec.Solver == "" || rec.Algo == "" {
		t.Fatalf("flight record missing solver attribution: %+v", rec)
	}
	if rec.Trace == nil || rec.Trace.TraceID != inTrace {
		t.Fatalf("flight record trace summary not stamped: %+v", rec.Trace)
	}

	// Metrics: a plain scrape is classic 0.0.4 text with no exemplars (the
	// classic parser would reject them); an OpenMetrics scrape carries the
	// trace id as an exemplar on a latency-histogram bucket line.
	code, met := getBody(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if strings.Contains(string(met), " # ") {
		t.Fatalf("classic /metrics scrape carries an exemplar suffix:\n%s", met)
	}
	if err := obsv.LintProm(string(met)); err != nil {
		t.Fatalf("classic /metrics fails LintProm: %v", err)
	}
	code, met = getOpenMetrics(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics (OpenMetrics) status %d", code)
	}
	want := `# {trace_id="` + inTrace + `"}`
	if !strings.Contains(string(met), want) {
		t.Fatalf("/metrics has no exemplar %q:\n%s", want, met)
	}
	exRE := regexp.MustCompile(`standout_serve_request_seconds_bucket\{le="[^"]+"\} \d+ # \{trace_id="` +
		inTrace + `"\} `)
	if !exRE.MatchString(string(met)) {
		t.Fatalf("exemplar not on a standout_serve_request_seconds bucket line:\n%s", met)
	}
	if err := obsv.LintProm(string(met)); err != nil {
		t.Fatalf("/metrics with exemplars fails LintProm: %v", err)
	}
}

// getOpenMetrics is getBody with the Accept header a Prometheus OpenMetrics
// scrape sends, selecting the exemplar-carrying /metrics dialect.
func getOpenMetrics(t *testing.T, url string) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "application/openmetrics-text; version=1.0.0; charset=utf-8")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp.StatusCode, out
}

func TestMintedTraceIDWhenHeaderAbsentOrBad(t *testing.T) {
	_, ts, _, tuples := newTestServer(t, nil)
	seen := map[string]bool{}
	for _, hdr := range []map[string]string{
		nil,
		{"traceparent": "00-zzzz-bad-01"}, // malformed → minted, not errored
	} {
		status, raw, h := postJSONH(t, ts.URL+"/solve", solveRequest{Tuple: tuples[0].String(), M: 4}, hdr)
		if status != http.StatusOK {
			t.Fatalf("solve status %d: %s", status, raw)
		}
		id := h.Get("X-Request-Id")
		if len(id) != 32 {
			t.Fatalf("minted X-Request-Id %q is not 32 hex chars", id)
		}
		if _, _, err := obsv.ParseTraceparent(h.Get("traceparent")); err != nil {
			t.Fatalf("minted traceparent %q invalid: %v", h.Get("traceparent"), err)
		}
		if seen[id] {
			t.Fatalf("trace id %s reused across requests", id)
		}
		seen[id] = true
		if body := decode[solveResponse](t, raw); body.TraceID != id {
			t.Fatalf("body trace_id %q != header id %q", body.TraceID, id)
		}
	}
}

// TestShedResponseCarriesTraceHeaders is the regression for the shed path:
// a 429 must keep its Retry-After hint and now also carry the trace headers
// and body trace id, and the shed lands in the flight recorder.
func TestShedResponseCarriesTraceHeaders(t *testing.T) {
	inj := fault.New(7, fault.Rule{Site: "serve.solve", Kind: fault.KindDelay, Delay: 300 * time.Millisecond})
	srv, ts, _, tuples := newTestServer(t, func(c *Config) {
		c.MaxConcurrent = 1
		c.MaxQueue = 1
		c.Injector = inj
	})
	const n = 10
	var mu sync.Mutex
	var shedIDs []string
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, raw, hdr := postJSONH(t, ts.URL+"/solve",
				solveRequest{Tuple: tuples[i%len(tuples)].String(), M: 2}, nil)
			if status != http.StatusTooManyRequests {
				return
			}
			if got := hdr.Get("Retry-After"); got != "1" {
				t.Errorf("429 Retry-After = %q, want \"1\"", got)
			}
			id := hdr.Get("X-Request-Id")
			if len(id) != 32 {
				t.Errorf("429 X-Request-Id = %q, want 32 hex chars", id)
			}
			if _, _, err := obsv.ParseTraceparent(hdr.Get("traceparent")); err != nil {
				t.Errorf("429 traceparent %q invalid: %v", hdr.Get("traceparent"), err)
			}
			e := decode[errorResponse](t, raw)
			if e.RetryAfterMS <= 0 {
				t.Errorf("429 without retry_after_ms: %s", raw)
			}
			if e.TraceID != id {
				t.Errorf("429 body trace_id %q != header id %q", e.TraceID, id)
			}
			mu.Lock()
			shedIDs = append(shedIDs, id)
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	if len(shedIDs) == 0 {
		t.Fatalf("no requests shed with 1 slot + 1 queue and %d concurrent callers", n)
	}
	// Shed requests are interesting: tail sampling must have kept every one.
	for _, id := range shedIDs {
		rec, ok := srv.Flight().Find(id)
		if !ok {
			t.Fatalf("shed request %s missing from flight recorder", id)
		}
		if !rec.Shed || rec.Status != http.StatusTooManyRequests {
			t.Fatalf("shed flight record = %+v", rec)
		}
	}
}

// TestMetricsFamiliesGolden pins the /metrics family shape (names, help,
// types) of a fresh server's registry against a golden file, so renames and
// accidental family drops show up as a diff. Run with -update to rewrite.
func TestMetricsFamiliesGolden(t *testing.T) {
	_, ts, _, _ := newTestServer(t, nil)
	code, met := getBody(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	var families []string
	for _, line := range strings.Split(string(met), "\n") {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			families = append(families, line)
		}
	}
	got := strings.Join(families, "\n") + "\n"
	golden := filepath.Join("testdata", "metrics_families.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run `go test ./internal/serve -run Golden -update` to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("metrics families diverge from %s (run with -update to accept):\n--- got ---\n%s--- want ---\n%s",
			golden, got, want)
	}
}

// TestFullLiveRegistryLintProm renders the real process-wide registry — core
// solver metrics, cache counters and serve metrics together — after mixed
// traffic, and holds both dialects (classic 0.0.4 and OpenMetrics with
// exemplars) to the strict LintProm grammar.
func TestFullLiveRegistryLintProm(t *testing.T) {
	_, ts, _, tuples := newTestServer(t, func(c *Config) {
		c.Registry = obsv.Default
	})
	for i, tuple := range tuples {
		if status, raw := postJSON(t, ts.URL+"/solve", solveRequest{Tuple: tuple.String(), M: 3 + i%3}); status != http.StatusOK {
			t.Fatalf("solve status %d: %s", status, raw)
		}
	}
	specs := make([]string, len(tuples))
	for i, tuple := range tuples {
		specs[i] = tuple.String()
	}
	status, raw := postJSON(t, ts.URL+"/solve/batch", batchRequest{Tuples: specs, M: 4})
	if status != http.StatusOK {
		t.Fatalf("batch status %d: %s", status, raw)
	}
	if b := decode[batchResponse](t, raw); b.TraceID == "" {
		t.Fatal("batch response body has no trace_id")
	}

	var sb strings.Builder
	if err := obsv.Default.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	dump := sb.String()
	if err := obsv.LintProm(dump); err != nil {
		t.Fatalf("full live registry fails LintProm: %v", err)
	}
	if strings.Contains(dump, " # ") {
		t.Fatal("classic WriteProm dump carries an exemplar suffix")
	}
	for _, family := range []string{
		"standout_solve_duration_seconds", // core, with exemplars from traced solves
		"standout_cache_hits_total",
		"standout_cache_misses_total",
		"standout_cache_evictions_total",
		"standout_serve_requests_total",
	} {
		if !strings.Contains(dump, "# TYPE "+family+" ") {
			t.Errorf("full registry missing family %s", family)
		}
	}

	sb.Reset()
	if err := obsv.Default.WriteOpenMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	om := sb.String()
	if err := obsv.LintProm(om); err != nil {
		t.Fatalf("full live registry (OpenMetrics) fails LintProm: %v", err)
	}
	// The core solve histogram on the default registry picked up exemplars
	// from the traced requests above; only the OpenMetrics dialect shows them.
	if !regexp.MustCompile(`standout_solve_duration_seconds_bucket\{le="[^"]+"\} \d+ # \{trace_id="[0-9a-f]{32}"\}`).MatchString(om) {
		t.Error("standout_solve_duration_seconds has no trace exemplar after traced solves")
	}
}

// TestFlightRecorderUnderStorm runs faulted concurrent traffic with tail
// sampling on while readers hammer the debug endpoints — the recorder's
// production shape. Invariants: every response stays well-formed, the ring
// keeps every interesting request it saw, and the debug endpoint always
// returns coherent JSON.
func TestFlightRecorderUnderStorm(t *testing.T) {
	srv, ts, _, tuples := newTestServer(t, func(c *Config) {
		c.Injector = chaosInjector(3)
		c.FlightSize = 64
		c.SampleEvery = 4
		c.SlowThreshold = time.Minute // storm latencies are not "slow"; flags come from faults
	})
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for g := 0; g < 2; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				code, raw := getBody(t, ts.URL+"/debug/requests?interesting=1")
				if code != http.StatusOK {
					t.Errorf("debug list status %d", code)
					return
				}
				var list struct {
					Stats   obsv.FlightStats `json:"stats"`
					Records []obsv.Record    `json:"records"`
				}
				if err := json.Unmarshal(raw, &list); err != nil {
					t.Errorf("debug list body: %v", err)
					return
				}
				for _, r := range list.Records {
					if !r.Interesting() {
						t.Errorf("interesting=1 returned boring record %+v", r)
						return
					}
				}
			}
		}()
	}

	var writers sync.WaitGroup
	for c := 0; c < 4; c++ {
		writers.Add(1)
		go func(c int) {
			defer writers.Done()
			for i := 0; i < 40; i++ {
				tuple := tuples[(c+i)%len(tuples)]
				status, raw := postJSON(t, ts.URL+"/solve",
					solveRequest{Tuple: tuple.String(), M: 4, TimeoutMS: 2000})
				wellFormed(t, "solve", status, raw)
			}
		}(c)
	}
	writers.Wait()
	close(stop)
	readers.Wait()

	st := srv.Flight().Stats()
	if st.Seen == 0 || st.Kept == 0 {
		t.Fatalf("recorder saw nothing under storm: %+v", st)
	}
	if st.Kept+st.SampledOut != st.Seen {
		t.Fatalf("stats don't add up: %+v", st)
	}
	faulted := 0
	for _, r := range srv.Flight().Snapshot() {
		if r.Fault {
			faulted++
			if r.Trace == nil || r.Trace.Counters["fault.fired"] == 0 {
				t.Fatalf("faulted record without fault.fired in its trace: %+v", r)
			}
		}
	}
	if faulted == 0 {
		t.Fatal("chaos storm produced no fault-flagged flight records")
	}
}

// TestLogRouteTraced pins that the log management routes are traced too.
func TestLogRouteTraced(t *testing.T) {
	_, ts, _, _ := newTestServer(t, nil)
	resp, err := http.Get(ts.URL + "/log")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if id := resp.Header.Get("X-Request-Id"); len(id) != 32 {
		t.Fatalf("GET /log X-Request-Id = %q, want 32 hex chars", id)
	}
}

// TestBadRequestRecordCarriesError pins that ad-hoc 4xx writes — which call
// writeJSON with an errorResponse directly instead of going through
// writeSolveError — still land their message in the flight record (stamp is
// the choke point that notes it).
func TestBadRequestRecordCarriesError(t *testing.T) {
	srv, ts, _, _ := newTestServer(t, nil)
	status, raw, hdr := postJSONH(t, ts.URL+"/solve", solveRequest{Tuple: "NotAnAttr", M: 2}, nil)
	if status != http.StatusBadRequest {
		t.Fatalf("bad tuple status %d: %s", status, raw)
	}
	id := hdr.Get("X-Request-Id")
	rec, ok := srv.Flight().Find(id)
	if !ok {
		t.Fatalf("400 request %s missing from flight recorder", id)
	}
	if rec.Status != http.StatusBadRequest || !strings.Contains(rec.Error, "bad tuple") {
		t.Fatalf("400 flight record lost its error: %+v", rec)
	}
	if e := decode[errorResponse](t, raw); e.Error != rec.Error {
		t.Fatalf("record error %q != body error %q", rec.Error, e.Error)
	}
}
