package serve

import (
	"context"
	"math/rand"
	"sync"
	"time"

	"standout/internal/core"
	"standout/internal/dataset"
)

// prepCache is the server's single-flight holder of the shared PreparedLog.
// Many requests discovering a missing or stale prep at once fold into one
// rebuild: the first caller builds (with bounded, jitter-backed retries
// against a log that keeps moving), everyone else waits on the in-flight
// build or on their own context, whichever ends first. Rebuilding outside
// any request context means a cancelled requester never poisons the build
// its siblings are waiting for.
type prepCache struct {
	mu   sync.Mutex
	cur  *core.PreparedLog
	wait chan struct{} // non-nil while a build is in flight
	err  error         // outcome of the last finished build

	buildCtx context.Context // server base context: carries the injector
	retries  int
	backoff  time.Duration
	met      *metrics

	rngMu sync.Mutex
	rng   *rand.Rand
}

func newPrepCache(buildCtx context.Context, seed int64, retries int, backoff time.Duration, met *metrics) *prepCache {
	return &prepCache{
		buildCtx: buildCtx,
		retries:  retries,
		backoff:  backoff,
		met:      met,
		rng:      rand.New(rand.NewSource(seed)),
	}
}

// usable reports whether p can serve solves of log right now.
func usable(p *core.PreparedLog, log *dataset.QueryLog) bool {
	return p != nil && p.Log() == log && !p.Stale()
}

// get returns a usable PreparedLog for log, joining or starting a
// single-flight rebuild when the cached one is missing, stale, or built for
// a previous log generation. A nil PreparedLog with a nil error never
// happens; on persistent build failure the error reports the last attempt's
// cause and callers fall back to index-less solving.
func (c *prepCache) get(ctx context.Context, log *dataset.QueryLog) (*core.PreparedLog, error) {
	for {
		c.mu.Lock()
		if usable(c.cur, log) {
			p := c.cur
			c.mu.Unlock()
			return p, nil
		}
		if c.wait == nil {
			ch := make(chan struct{})
			c.wait = ch
			// The outgoing generation seeds the incremental path: when the new
			// log provably extends it (the POST /log append path guarantees
			// that), the rebuild is a delta over only the appended queries.
			prev := c.cur
			c.mu.Unlock()

			p, err := c.build(prev, log)

			c.mu.Lock()
			if err == nil {
				c.cur = p
			}
			c.err = err
			c.wait = nil
			c.mu.Unlock()
			close(ch)
			if err == nil {
				// Warm the estimator model in the background so the ladder's
				// shed-of-last-resort rung (DESIGN.md §16) is armed without any
				// request paying the mining pass. Single-flight per prep
				// generation: EstimatorModel folds concurrent builders.
				go func() { _, _ = p.EstimatorModel(c.buildCtx) }()
			}
			return p, err
		}
		ch := c.wait
		c.mu.Unlock()
		select {
		case <-ch:
			// Re-check: the finished build may target our log (use it), an
			// older generation (start our own), or have failed (surface it
			// below through another loop iteration's build).
			c.mu.Lock()
			if usable(c.cur, log) {
				p := c.cur
				c.mu.Unlock()
				return p, nil
			}
			if err := c.err; err != nil {
				c.mu.Unlock()
				return nil, err
			}
			c.mu.Unlock()
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// build runs one rebuild with retries: each attempt that fails — an injected
// build fault, or a log Touch racing the build so the fresh prep is born
// stale — backs off for base<<attempt plus seeded jitter and tries again.
// When prev's lineage covers log, each attempt is an O(append) delta build;
// otherwise a full re-index (PrepareLogFromContext decides per attempt).
func (c *prepCache) build(prev *core.PreparedLog, log *dataset.QueryLog) (*core.PreparedLog, error) {
	c.met.prepRebuilds.Add(1)
	var lastErr error
	for attempt := 0; attempt <= c.retries; attempt++ {
		if attempt > 0 {
			c.met.prepRetries.Add(1)
			if err := sleepCtx(c.buildCtx, c.backoffFor(attempt)); err != nil {
				return nil, err
			}
		}
		p, err := core.PrepareLogFromContext(c.buildCtx, prev, log)
		if err != nil {
			lastErr = err
			continue
		}
		if p.Stale() {
			lastErr = core.ErrStalePrep
			continue
		}
		if p.Delta() {
			c.met.prepDeltas.Add(1)
		}
		return p, nil
	}
	return nil, lastErr
}

// backoffFor is base<<(attempt-1) plus up to 100% seeded jitter, so
// rebuilding herds desynchronize deterministically under a fixed seed.
func (c *prepCache) backoffFor(attempt int) time.Duration {
	base := c.backoff << (attempt - 1)
	c.rngMu.Lock()
	j := time.Duration(c.rng.Int63n(int64(base) + 1))
	c.rngMu.Unlock()
	return base + j
}

// invalidate drops a cached prep built for an older log generation so the
// next get starts fresh. Harmless if another generation already replaced it.
func (c *prepCache) invalidate(old *core.PreparedLog) {
	c.mu.Lock()
	if c.cur == old {
		c.cur = nil
	}
	c.mu.Unlock()
}

// snapshot returns the cached prep without building, for readiness checks.
func (c *prepCache) snapshot() *core.PreparedLog {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cur
}

// sleepCtx blocks for d or until ctx is done.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
