package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"standout/internal/bitvec"
	"standout/internal/core"
	"standout/internal/dataset"
	"standout/internal/obsv"
)

// The scoring endpoints back the sharded scatter-gather coordinator
// (internal/shard): a shard is an ordinary socserve instance holding one
// partition of the query log, and the coordinator drives solves by asking
// each shard for additive weighted counts instead of full solves — the only
// composition that is bit-identical to the unsharded solver (DESIGN.md §15).
//
//	POST /score   {"mode": "subset"|"superset", "candidates": [...]}
//	GET  /schema  the serving schema, so a coordinator needs no workload copy

type scoreRequest struct {
	// Mode selects the counting oracle: "subset" counts queries contained in
	// each candidate (the SOC-CB-QL objective), "superset" counts queries
	// containing it (greedy co-occurrence scores and attribute frequencies).
	Mode string `json:"mode"`
	// Candidates are tuples in the /solve syntax: 0/1 bit strings of the
	// schema width or comma-separated attribute-name lists.
	Candidates []string `json:"candidates"`
	// TimeoutMS bounds the scoring pass; 0 means the server default.
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

type scoreResponse struct {
	TraceID string `json:"trace_id,omitempty"`
	// Counts has one total per candidate, aligned with the request order.
	Counts []int `json:"counts"`
	// Log-snapshot facts, so a coordinator can detect mid-request log swaps.
	Queries     int     `json:"queries"`
	TotalWeight int     `json:"total_weight"`
	Width       int     `json:"width"`
	Version     uint64  `json:"version"`
	Fingerprint string  `json:"fingerprint"`
	ElapsedMS   float64 `json:"elapsed_ms"`
}

type schemaResponse struct {
	Attrs []string `json:"attrs"`
	Width int      `json:"width"`
}

func (s *Server) handleScore(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(r.Context(), w, http.StatusMethodNotAllowed, errorResponse{Error: "POST only"})
		return
	}
	s.met.requests.Add(1)
	var req scoreRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20)).Decode(&req); err != nil {
		writeJSON(r.Context(), w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
		return
	}
	if req.Mode != "subset" && req.Mode != "superset" {
		writeJSON(r.Context(), w, http.StatusBadRequest, errorResponse{
			Error: fmt.Sprintf("unknown mode %q (have subset, superset)", req.Mode)})
		return
	}
	if len(req.Candidates) == 0 {
		writeJSON(r.Context(), w, http.StatusBadRequest, errorResponse{Error: "empty candidates"})
		return
	}
	if len(req.Candidates) > s.cfg.MaxBatch {
		writeJSON(r.Context(), w, http.StatusBadRequest, errorResponse{
			Error: fmt.Sprintf("batch of %d exceeds limit %d", len(req.Candidates), s.cfg.MaxBatch)})
		return
	}
	log := s.CurrentLog()
	cands := make([]bitvec.Vector, len(req.Candidates))
	for i, spec := range req.Candidates {
		cand, err := dataset.ParseTuple(log.Schema, spec)
		if err != nil {
			writeJSON(r.Context(), w, http.StatusBadRequest, errorResponse{Error: "bad candidate: " + err.Error()})
			return
		}
		cands[i] = cand
	}

	ctx := s.reqCtx(r)
	if !s.admit(ctx, w) {
		return
	}
	defer s.adm.release()

	ctx, cancel := context.WithTimeout(ctx, s.timeoutFor(req.TimeoutMS))
	defer cancel()

	start := time.Now()
	var counts []int
	var err error
	if req.Mode == "subset" {
		// The subset oracle benefits from the shared index; a missing or
		// still-building prep falls back to plain scans, bit-identically.
		pctx := ctx
		if p, perr := s.prep.get(ctx, log); perr == nil {
			pctx = core.WithPrepared(ctx, p)
		}
		counts, err = core.CountSatisfied(pctx, log, cands)
	} else {
		counts, err = core.CountContaining(ctx, log, cands)
	}
	elapsed := time.Since(start)
	s.met.latency.ObserveExemplar(elapsed.Seconds(), obsv.TraceIDStringFromContext(ctx))
	if err != nil {
		s.writeSolveError(ctx, w, err)
		return
	}
	writeJSON(r.Context(), w, http.StatusOK, scoreResponse{
		Counts:      counts,
		Queries:     log.Size(),
		TotalWeight: log.TotalWeight(),
		Width:       log.Width(),
		Version:     log.Version(),
		Fingerprint: fmt.Sprintf("%016x", log.Fingerprint()),
		ElapsedMS:   float64(elapsed) / float64(time.Millisecond),
	})
}

// handleSchema serves the schema of the current log, so a shard coordinator
// can parse tuples and render kept-attribute names without holding any
// workload of its own.
func (s *Server) handleSchema(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeJSON(r.Context(), w, http.StatusMethodNotAllowed, errorResponse{Error: "GET only"})
		return
	}
	log := s.CurrentLog()
	writeJSON(r.Context(), w, http.StatusOK, schemaResponse{
		Attrs: log.Schema.Attrs(),
		Width: log.Width(),
	})
}
