package serve

import (
	"context"
	"log/slog"
	"net/http"
	"time"

	"standout/internal/obsv"
)

// Request-scoped tracing (DESIGN.md §13). Every traced route gets a W3C
// trace context: an inbound `traceparent` header is honored (the request
// joins the caller's trace), otherwise a fresh trace ID is minted. The IDs
// ride the request context into the solver stack (obsv.WithIDs), the trace
// collector is stamped with them (obsv.Trace.SetTraceID), and the response
// echoes them in `traceparent` and `X-Request-Id` headers plus a `trace_id`
// body field — so a caller holding an error response can go straight to
// `GET /debug/requests/{id}` and the latency-histogram exemplars.

// reqInfo accumulates per-request facts the handlers learn (which ladder rung
// answered, whether admission shed, the error served) for the flight record.
// It is written by the single handler goroutine and read by the middleware
// after the handler returns.
type reqInfo struct {
	algo     string
	solver   string
	degraded bool
	shed     bool
	panicked bool
	errMsg   string
}

// infoKey carries the *reqInfo in a context; zero-size for free lookups.
type infoKey struct{}

// noteInfo returns the request's reqInfo, or a throwaway on an untraced
// context so call sites never nil-check.
func noteInfo(ctx context.Context) *reqInfo {
	if i, ok := ctx.Value(infoKey{}).(*reqInfo); ok {
		return i
	}
	return &reqInfo{}
}

// statusWriter captures the status code a handler writes.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// traced wraps a route handler with the tracing middleware: trace-context
// extraction/minting, header echo, an obsv.Trace for the solver stack, and —
// after the handler returns — the flight-recorder record and the slow-request
// log. It is the outermost layer, so a panic converted to a 500 by recovered
// still produces a record with its real status.
func (s *Server) traced(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		tid, _, err := obsv.ParseTraceparent(r.Header.Get("traceparent"))
		if err != nil {
			tid = obsv.NewTraceID()
		}
		span := obsv.NewSpanID()

		tr := obsv.NewTrace()
		tr.SetTraceID(tid)
		info := &reqInfo{}
		ctx := obsv.WithIDs(r.Context(), tid, span)
		ctx = obsv.WithTrace(ctx, tr)
		ctx = context.WithValue(ctx, infoKey{}, info)

		w.Header().Set("X-Request-Id", tid.String())
		w.Header().Set("traceparent", obsv.FormatTraceparent(tid, span))

		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		h(sw, r.WithContext(ctx))
		elapsed := time.Since(start)

		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		summary := tr.Snapshot()
		rec := &obsv.Record{
			TraceID:   tid.String(),
			Route:     route,
			Status:    sw.status,
			Start:     start,
			LatencyMS: float64(elapsed) / float64(time.Millisecond),
			Algo:      info.algo,
			Solver:    info.solver,
			Degraded:  info.degraded,
			Shed:      info.shed || sw.status == http.StatusTooManyRequests,
			Panic:     info.panicked,
			Fault:     tr.Counter("fault.fired") > 0,
			Error:     info.errMsg,
			Trace:     &summary,
		}
		if s.cfg.SlowThreshold > 0 && elapsed >= s.cfg.SlowThreshold {
			rec.Slow = true
		}
		s.flight.Record(rec)
		if rec.Slow {
			s.logger.LogAttrs(ctx, slog.LevelWarn, "slow request",
				slog.String("trace_id", rec.TraceID),
				slog.String("route", route),
				slog.Int("status", rec.Status),
				slog.Float64("latency_ms", rec.LatencyMS),
				slog.String("algo", rec.Algo),
				slog.String("solver", rec.Solver),
				slog.Bool("degraded", rec.Degraded),
				slog.Bool("fault", rec.Fault))
		}
	}
}

// Flight returns the server's flight recorder (nil when disabled), for tests
// and embedding processes that want programmatic access to recent requests.
func (s *Server) Flight() *obsv.Flight { return s.flight }

// stamp copies the request's trace ID into a response body that carries one,
// so bodies are correlatable even when a proxy strips response headers. As
// the choke point every error body passes through, it also notes the message
// for the flight record, so ad-hoc 4xx writes need no extra bookkeeping.
func stamp(ctx context.Context, v any) any {
	if t, ok := v.(errorResponse); ok {
		if info := noteInfo(ctx); info.errMsg == "" {
			info.errMsg = t.Error
		}
	}
	id := obsv.TraceIDStringFromContext(ctx)
	if id == "" {
		return v
	}
	switch t := v.(type) {
	case errorResponse:
		t.TraceID = id
		return t
	case solveResponse:
		t.TraceID = id
		return t
	case batchResponse:
		t.TraceID = id
		return t
	case scoreResponse:
		t.TraceID = id
		return t
	}
	return v
}
