package compact

import (
	"math/rand"
	"testing"

	"standout/internal/bitvec"
	"standout/internal/dataset"
)

func logOf(t *testing.T, width int, specs ...string) *dataset.QueryLog {
	t.Helper()
	log := dataset.NewQueryLog(dataset.GenericSchema(width))
	for _, s := range specs {
		v, err := bitvec.FromString(s)
		if err != nil {
			t.Fatalf("bad spec %q: %v", s, err)
		}
		if err := log.Append(v); err != nil {
			t.Fatalf("append %q: %v", s, err)
		}
	}
	return log
}

func TestCompactFoldsDuplicates(t *testing.T) {
	log := logOf(t, 4, "1100", "0011", "1100", "1100", "0011", "1000")
	out, st := Compact(log)
	if out.Size() != 3 {
		t.Fatalf("got %d distinct queries, want 3", out.Size())
	}
	if st.DuplicatesFolded != 3 {
		t.Fatalf("DuplicatesFolded = %d, want 3", st.DuplicatesFolded)
	}
	if st.InputWeight != 6 || st.OutputWeight != 6 {
		t.Fatalf("weight not preserved: in %d out %d", st.InputWeight, st.OutputWeight)
	}
	// First-occurrence order and folded weights.
	wantW := []int{3, 2, 1}
	for i, w := range wantW {
		if out.Weight(i) != w {
			t.Fatalf("weight[%d] = %d, want %d", i, out.Weight(i), w)
		}
	}
	if err := out.Validate(); err != nil {
		t.Fatalf("compacted log invalid: %v", err)
	}
}

func TestCompactUnweightedStaysNil(t *testing.T) {
	log := logOf(t, 3, "100", "010", "001")
	out, st := Compact(log)
	if out.Weights != nil {
		t.Fatalf("all-distinct log should stay unweighted, got weights %v", out.Weights)
	}
	if st.DuplicatesFolded != 0 || st.Ratio() != 1 {
		t.Fatalf("unexpected stats %+v", st)
	}
}

func TestCompactFoldsIncomingWeights(t *testing.T) {
	log := logOf(t, 3, "110")
	if err := log.AppendWeighted(mustVec(t, "110"), 4); err != nil {
		t.Fatal(err)
	}
	if err := log.AppendWeighted(mustVec(t, "011"), 2); err != nil {
		t.Fatal(err)
	}
	out, st := Compact(log)
	if out.Size() != 2 || out.Weight(0) != 5 || out.Weight(1) != 2 {
		t.Fatalf("incoming weights not folded: size %d weights %v", out.Size(), out.Weights)
	}
	if st.InputWeight != 7 || st.OutputWeight != 7 {
		t.Fatalf("weight not preserved: %+v", st)
	}
}

func TestSubsumptionDetectedNotFolded(t *testing.T) {
	// Chain 1000 ⊂ 1100 ⊂ 1110 ⊂ 1111 plus an unrelated 0001.
	log := logOf(t, 4, "1000", "1100", "1110", "1111", "0001")
	out, st := Compact(log)
	if out.Size() != 5 {
		t.Fatalf("subsumed queries must NOT fold: got %d queries, want 5", out.Size())
	}
	if st.SubsumedQueries != 3 {
		t.Fatalf("SubsumedQueries = %d, want 3 (every chain member above the root)", st.SubsumedQueries)
	}
	if st.MaxChainLength != 4 {
		t.Fatalf("MaxChainLength = %d, want 4", st.MaxChainLength)
	}
}

func TestCompactEmptyAndAllDuplicates(t *testing.T) {
	empty := dataset.NewQueryLog(dataset.GenericSchema(3))
	out, st := Compact(empty)
	if out.Size() != 0 || st.MaxChainLength != 0 {
		t.Fatalf("empty log: %+v", st)
	}

	dup := logOf(t, 3, "101", "101", "101", "101")
	out, st = Compact(dup)
	if out.Size() != 1 || out.Weight(0) != 4 {
		t.Fatalf("all-duplicate log: size %d weights %v", out.Size(), out.Weights)
	}
	if st.MaxChainLength != 1 {
		t.Fatalf("single distinct query has chain length 1, got %d", st.MaxChainLength)
	}
}

// TestCompactObjectiveExact is the package-local exactness check: the
// weighted Satisfied of the compacted log equals the raw count for every
// vector of the lattice, on random duplicate-heavy logs. The cross-solver
// differential suite lives in internal/core.
func TestCompactObjectiveExact(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		width := 3 + r.Intn(6) // ≤ 8 so the full lattice is enumerable
		log := dataset.NewQueryLog(dataset.GenericSchema(width))
		nq := r.Intn(30)
		for i := 0; i < nq; i++ {
			v := bitvec.New(width)
			for j := 0; j < width; j++ {
				if r.Intn(3) == 0 {
					v.Set(j)
				}
			}
			if err := log.Append(v); err != nil {
				t.Fatal(err)
			}
		}
		out, st := Compact(log)
		if st.InputWeight != st.OutputWeight {
			t.Fatalf("trial %d: weight changed %d → %d", trial, st.InputWeight, st.OutputWeight)
		}
		for mask := 0; mask < 1<<width; mask++ {
			v := bitvec.New(width)
			for j := 0; j < width; j++ {
				if mask&(1<<j) != 0 {
					v.Set(j)
				}
			}
			if got, want := out.Satisfied(v), log.Satisfied(v); got != want {
				t.Fatalf("trial %d mask %b: compacted Satisfied = %d, raw = %d", trial, mask, got, want)
			}
		}
	}
}

func mustVec(t *testing.T, s string) bitvec.Vector {
	t.Helper()
	v, err := bitvec.FromString(s)
	if err != nil {
		t.Fatal(err)
	}
	return v
}
