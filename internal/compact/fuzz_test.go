package compact

import (
	"testing"

	"standout/internal/bitvec"
	"standout/internal/dataset"
)

// FuzzCompactEquivalence checks, on fuzzer-shaped weighted logs, that
// compaction preserves the SOC-CB-QL objective at every vector of the subset
// lattice, conserves total weight, keeps first-occurrence order, and emits
// internally consistent stats. Pointwise objective equality is the exactness
// contract every solver relies on (see the package comment).
//
// Input layout: byte 0 picks the width (1..8, kept narrow so the full 2^width
// lattice is enumerable per input); each following byte pair is one query —
// first byte the bit pattern, second byte the weight (1 + b%7). A duplicate
// byte (pattern already seen) exercises the folding path by construction.
func FuzzCompactEquivalence(f *testing.F) {
	f.Add([]byte{4, 0b1100, 0, 0b0011, 2, 0b1100, 0, 0b1000, 5})
	f.Add([]byte{3, 0b101, 0, 0b101, 0, 0b101, 0, 0b101, 0})
	f.Add([]byte{8, 0b1, 0, 0b11, 1, 0b111, 2, 0b1111, 3})
	f.Add([]byte{1, 1, 6})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 1 {
			return
		}
		width := 1 + int(data[0])%8
		data = data[1:]

		log := dataset.NewQueryLog(dataset.GenericSchema(width))
		for len(data) >= 2 && log.Size() < 48 {
			v := bitvec.New(width)
			for j := 0; j < width; j++ {
				if data[0]&(1<<j) != 0 {
					v.Set(j)
				}
			}
			w := 1 + int(data[1])%7
			data = data[2:]
			if err := log.AppendWeighted(v, w); err != nil {
				t.Fatalf("append: %v", err)
			}
		}

		out, st := Compact(log)
		if err := out.Validate(); err != nil {
			t.Fatalf("compacted log invalid: %v", err)
		}
		if st.InputWeight != log.TotalWeight() || st.OutputWeight != out.TotalWeight() {
			t.Fatalf("stats weight mismatch: %+v", st)
		}
		if st.InputWeight != st.OutputWeight {
			t.Fatalf("compaction changed total weight: %d → %d", st.InputWeight, st.OutputWeight)
		}
		if st.DuplicatesFolded != log.Size()-out.Size() {
			t.Fatalf("DuplicatesFolded %d, sizes %d → %d", st.DuplicatesFolded, log.Size(), out.Size())
		}
		if out.Size() > log.Size() {
			t.Fatalf("compaction grew the log: %d → %d", log.Size(), out.Size())
		}

		// The compacted queries must be log's distinct queries in
		// first-occurrence order.
		seen := make(map[string]bool, log.Size())
		want := 0
		for i, q := range log.Queries {
			k := q.Key()
			if seen[k] {
				continue
			}
			seen[k] = true
			if want >= out.Size() || !out.Queries[want].Equal(q) {
				t.Fatalf("distinct query %d (input %d) out of order", want, i)
			}
			want++
		}
		if want != out.Size() {
			t.Fatalf("compacted size %d, distinct count %d", out.Size(), want)
		}

		// Pointwise objective equality over the full lattice.
		for mask := 0; mask < 1<<width; mask++ {
			v := bitvec.New(width)
			for j := 0; j < width; j++ {
				if mask&(1<<j) != 0 {
					v.Set(j)
				}
			}
			if got, raw := out.Satisfied(v), log.Satisfied(v); got != raw {
				t.Fatalf("mask %b: compacted Satisfied = %d, raw = %d", mask, got, raw)
			}
		}
	})
}
