// Package compact summarizes query logs into weighted form without changing
// any solver's answer.
//
// The SOC-CB-QL objective is f(v) = Σ_q w_q·[q ⊆ v]. Folding exact
// duplicates into one entry whose weight is the sum of the duplicates'
// weights leaves f pointwise unchanged — for every candidate compression v,
// not just the optimum — so every exact solver returns a bit-identical
// Solution over the compacted log, and the greedy heuristics do too because
// the statistics they consult (weighted attribute frequencies, weighted
// AND-counts, the first-occurrence order that drives tie-breaking) are all
// preserved by the fold. The differential suite in internal/core pins this
// across 1000 seeded instances.
//
// Duplicates are provably the ONLY thing a pointwise-exact compaction may
// fold. Folding a query q strictly subsumed by a shorter query p (p ⊂ q)
// into p's weight is tempting — every v satisfying q satisfies p — but it is
// lossy: the indicator functions v ↦ [q ⊆ v] over the subset lattice are
// linearly independent (they are the rows of the lattice's zeta matrix,
// which is triangular with unit diagonal under any linear extension of ⊆),
// so no reweighting of a strict subset of distinct queries reproduces f at
// every v. Concretely, with p = {a} ⊂ q = {a,b}, folding q into p scores
// v = {a} as 2 where the true objective is 1. Compact therefore folds only
// duplicates, and merely *reports* subsumption structure in its Stats so
// operators can see how much a lossy summarizer would have claimed.
package compact

import (
	"standout/internal/dataset"
)

// Stats describes one compaction run.
type Stats struct {
	// InputQueries and OutputQueries are the entry counts before and after;
	// InputWeight == OutputWeight always (compaction preserves total weight).
	InputQueries  int `json:"input_queries"`
	OutputQueries int `json:"output_queries"`
	InputWeight   int `json:"input_weight"`
	OutputWeight  int `json:"output_weight"`
	// DuplicatesFolded counts input entries absorbed into an earlier entry's
	// weight: InputQueries − OutputQueries.
	DuplicatesFolded int `json:"duplicates_folded"`
	// SubsumedQueries counts distinct output queries strictly containing
	// another distinct output query (q ⊃ p for some p in the log). These are
	// detected and reported but NOT folded — folding them would change
	// solver answers (see the package comment for the impossibility
	// argument).
	SubsumedQueries int `json:"subsumed_queries"`
	// MaxChainLength is the length of the longest subsumption chain
	// q_1 ⊂ q_2 ⊂ … ⊂ q_k among distinct output queries (1 when no
	// subsumption exists, 0 on an empty log).
	MaxChainLength int `json:"max_chain_length"`
}

// Ratio returns OutputQueries/InputQueries, the size of the compacted log
// relative to the input (1 when nothing folded, 0 for an empty input).
func (s Stats) Ratio() float64 {
	if s.InputQueries == 0 {
		return 0
	}
	return float64(s.OutputQueries) / float64(s.InputQueries)
}

// Compact returns a weighted query log equivalent to log for every SOC-CB-QL
// objective evaluation: exact duplicates are folded into the first
// occurrence's weight (existing weights summed), order of first occurrences
// preserved. The result is a fresh log; the input is not modified. Stats
// reports what folded and how much subsumption structure remains.
func Compact(log *dataset.QueryLog) (*dataset.QueryLog, Stats) {
	out, weights := log.Dedup()
	allUnit := true
	for _, w := range weights {
		if w != 1 {
			allUnit = false
			break
		}
	}
	if !allUnit {
		out.Weights = weights
	}
	st := Stats{
		InputQueries:  log.Size(),
		OutputQueries: out.Size(),
		InputWeight:   log.TotalWeight(),
		OutputWeight:  out.TotalWeight(),
	}
	st.DuplicatesFolded = st.InputQueries - st.OutputQueries
	st.SubsumedQueries, st.MaxChainLength = subsumptionStats(out)
	return out, st
}

// subsumptionStats computes, over the distinct queries of a deduplicated
// log, how many strictly contain another and the longest chain under strict
// containment. Chains are a longest-path computation over the containment
// DAG, evaluated by increasing popcount so every predecessor is finished
// first. Quadratic in the number of distinct queries; callers compact once
// per log generation, not per solve.
func subsumptionStats(log *dataset.QueryLog) (subsumed, maxChain int) {
	n := log.Size()
	if n == 0 {
		return 0, 0
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	counts := make([]int, n)
	for i, q := range log.Queries {
		counts[i] = q.Count()
	}
	// Insertion-free counting sort by popcount keeps this O(n log n)-ish.
	sortByCount(order, counts)
	chain := make([]int, n) // chain[i]: longest strict chain ending at query i
	maxChain = 1
	for oi, i := range order {
		chain[i] = 1
		qi := log.Queries[i]
		for _, j := range order[:oi] {
			if counts[j] >= counts[i] {
				continue // equal popcount can't be a strict subset
			}
			if log.Queries[j].SubsetOf(qi) {
				if chain[j]+1 > chain[i] {
					chain[i] = chain[j] + 1
				}
			}
		}
		if chain[i] > 1 {
			subsumed++
			if chain[i] > maxChain {
				maxChain = chain[i]
			}
		}
	}
	return subsumed, maxChain
}

// sortByCount stably sorts order by counts ascending.
func sortByCount(order, counts []int) {
	// Simple stable insertion-style sort via counting buckets.
	maxC := 0
	for _, c := range counts {
		if c > maxC {
			maxC = c
		}
	}
	buckets := make([][]int, maxC+1)
	for _, i := range order {
		buckets[counts[i]] = append(buckets[counts[i]], i)
	}
	order = order[:0]
	for _, b := range buckets {
		order = append(order, b...)
	}
}
