package topk

import (
	"reflect"
	"testing"

	"standout/internal/bitvec"
	"standout/internal/dataset"
)

func fixture(t *testing.T) *dataset.Table {
	t.Helper()
	tab := dataset.NewTable(dataset.GenericSchema(4))
	for _, row := range []string{
		"1100", // 0: 2 attrs
		"1110", // 1: 3 attrs
		"1111", // 2: 4 attrs
		"0110", // 3: 2 attrs
		"1010", // 4: 2 attrs
	} {
		v, err := bitvec.FromString(row)
		if err != nil {
			t.Fatal(err)
		}
		if err := tab.Append(v, ""); err != nil {
			t.Fatal(err)
		}
	}
	return tab
}

func TestQueryAttrCount(t *testing.T) {
	tab := fixture(t)
	e := New(tab, AttrCount)
	q := bitvec.FromIndices(4, 0, 1) // a0 ∧ a1 → rows 0,1,2 match
	got := e.Query(q, 2)
	if !reflect.DeepEqual(got, []int{2, 1}) { // 4 attrs, then 3
		t.Errorf("Query=%v", got)
	}
	if got := e.Query(q, 10); !reflect.DeepEqual(got, []int{2, 1, 0}) {
		t.Errorf("Query k>matches=%v", got)
	}
	if e.Query(q, 0) != nil {
		t.Error("k=0 should return nil")
	}
}

func TestCountBetter(t *testing.T) {
	tab := fixture(t)
	e := New(tab, AttrCount)
	q := bitvec.FromIndices(4, 0, 1)
	// Matches have scores 2,3,4. Better than 2.5 → two (3 and 4).
	if got := e.CountBetter(q, 2.5); got != 2 {
		t.Errorf("CountBetter=%d", got)
	}
	// Ties are not "better": score 4 exactly → 0 better.
	if got := e.CountBetter(q, 4); got != 0 {
		t.Errorf("CountBetter at max=%d", got)
	}
}

func TestWouldRetrieve(t *testing.T) {
	tab := fixture(t)
	e := New(tab, AttrCount)
	q := bitvec.FromIndices(4, 0, 1)
	kept := bitvec.FromIndices(4, 0, 1, 3) // matches q, score 3
	if !e.WouldRetrieve(q, kept, 3, 2) {
		t.Error("score-3 tuple should enter top-2 (only row 2 outranks)")
	}
	if e.WouldRetrieve(q, kept, 3, 1) {
		t.Error("score-3 tuple should not enter top-1 (row 2 outranks)")
	}
	nonMatching := bitvec.FromIndices(4, 0, 3)
	if e.WouldRetrieve(q, nonMatching, 10, 5) {
		t.Error("non-matching tuple retrieved")
	}
}

func TestNewWithRowScores(t *testing.T) {
	tab := fixture(t)
	// Rank by a "price" column, ascending price = descending score.
	prices := []float64{-5000, -9000, -20000, -3000, -7000}
	e, err := NewWithRowScores(tab, prices)
	if err != nil {
		t.Fatal(err)
	}
	q := bitvec.New(4) // matches everything
	got := e.Query(q, 3)
	if !reflect.DeepEqual(got, []int{3, 0, 4}) { // cheapest three
		t.Errorf("Query=%v", got)
	}
	if _, err := NewWithRowScores(tab, []float64{1}); err == nil {
		t.Error("accepted mismatched score count")
	}
	if e.Score(3) != -3000 {
		t.Errorf("Score(3)=%v", e.Score(3))
	}
}

func TestByColumn(t *testing.T) {
	f := ByColumn([]float64{10, 20})
	if f(0) != 10 || f(1) != 20 {
		t.Error("ByColumn wrong")
	}
}

func TestStableTies(t *testing.T) {
	tab := fixture(t)
	e := New(tab, func(bitvec.Vector) float64 { return 1 }) // all tied
	q := bitvec.New(4)
	if got := e.Query(q, 5); !reflect.DeepEqual(got, []int{0, 1, 2, 3, 4}) {
		t.Errorf("tied order=%v, want insertion order", got)
	}
}
