// Package topk implements top-k retrieval over Boolean tables with pluggable
// scoring functions — the retrieval substrate of the paper's SOC-Topk
// problem variant (§II.B): R(q) is the k highest-scoring tuples among those
// matching the conjunctive query q.
//
// The SOC-Topk reduction in package variants relies on global scoring
// functions — score(t) depends on the tuple only, not the query — which is
// exactly the case the paper singles out as tractable for its ILP and
// itemset machinery (§V).
package topk

import (
	"fmt"
	"sort"

	"standout/internal/bitvec"
	"standout/internal/dataset"
)

// Score is a global scoring function over tuples.
type Score func(row bitvec.Vector) float64

// AttrCount scores a tuple by its number of present attributes — the paper's
// example "top-10 cars ordered by decreasing number of available features".
func AttrCount(row bitvec.Vector) float64 { return float64(row.Count()) }

// ByColumn builds a score that ranks row i of a table by values[i] —
// e.g. ordering by a numeric attribute such as (negated) Price. It can only
// be used through Engine (which scores by row identity), not on arbitrary
// vectors; see Engine.New.
func ByColumn(values []float64) func(rowIdx int) float64 {
	return func(rowIdx int) float64 { return values[rowIdx] }
}

// Engine answers top-k conjunctive queries over a fixed table.
type Engine struct {
	tab    *dataset.Table
	scores []float64
	// byScore holds row indices sorted by descending score; queries scan it
	// and stop after k matches, which is fast when k is small.
	byScore []int
}

// New builds an engine using a global scoring function applied to each row.
func New(tab *dataset.Table, score Score) *Engine {
	scores := make([]float64, tab.Size())
	for i, row := range tab.Rows {
		scores[i] = score(row)
	}
	return newWithScores(tab, scores)
}

// NewWithRowScores builds an engine from precomputed per-row scores
// (e.g. ByColumn over a numeric attribute).
func NewWithRowScores(tab *dataset.Table, scores []float64) (*Engine, error) {
	if len(scores) != tab.Size() {
		return nil, fmt.Errorf("topk: %d scores for %d rows", len(scores), tab.Size())
	}
	return newWithScores(tab, append([]float64(nil), scores...)), nil
}

func newWithScores(tab *dataset.Table, scores []float64) *Engine {
	byScore := make([]int, tab.Size())
	for i := range byScore {
		byScore[i] = i
	}
	sort.SliceStable(byScore, func(a, b int) bool {
		return scores[byScore[a]] > scores[byScore[b]]
	})
	return &Engine{tab: tab, scores: scores, byScore: byScore}
}

// Score returns the stored score of row i.
func (e *Engine) Score(i int) float64 { return e.scores[i] }

// Query returns the indices of the top-k rows matching q (q ⊆ row), in
// descending score order; ties resolve by insertion order (stable).
func (e *Engine) Query(q bitvec.Vector, k int) []int {
	if k <= 0 {
		return nil
	}
	out := make([]int, 0, k)
	for _, i := range e.byScore {
		if q.SubsetOf(e.tab.Rows[i]) {
			out = append(out, i)
			if len(out) == k {
				break
			}
		}
	}
	return out
}

// CountBetter returns the number of rows matching q with score strictly
// greater than s — the quantity deciding whether a new tuple with score s
// would enter q's top-k result (ties resolve in the new tuple's favor).
func (e *Engine) CountBetter(q bitvec.Vector, s float64) int {
	n := 0
	for _, i := range e.byScore {
		if e.scores[i] <= s {
			break // byScore is sorted descending
		}
		if q.SubsetOf(e.tab.Rows[i]) {
			n++
		}
	}
	return n
}

// WouldRetrieve reports whether a new tuple with attribute set kept and
// score s would appear in q's top-k after insertion: it must match q and
// fewer than k existing matches must outrank it.
func (e *Engine) WouldRetrieve(q bitvec.Vector, kept bitvec.Vector, s float64, k int) bool {
	return q.SubsetOf(kept) && e.CountBetter(q, s) < k
}
