package obsv

import (
	"context"
	"strings"
	"testing"
)

func TestTraceparentRoundTrip(t *testing.T) {
	tid := NewTraceID()
	sid := NewSpanID()
	h := FormatTraceparent(tid, sid)
	if !strings.HasPrefix(h, "00-") || !strings.HasSuffix(h, "-01") || len(h) != 55 {
		t.Fatalf("formatted traceparent %q has wrong shape", h)
	}
	gotT, gotS, err := ParseTraceparent(h)
	if err != nil {
		t.Fatalf("ParseTraceparent(%q): %v", h, err)
	}
	if gotT != tid || gotS != sid {
		t.Fatalf("round trip: got (%s, %s), want (%s, %s)", gotT, gotS, tid, sid)
	}
}

func TestParseTraceparentHonorsInboundIDs(t *testing.T) {
	const h = "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	tid, sid, err := ParseTraceparent(h)
	if err != nil {
		t.Fatal(err)
	}
	if tid.String() != "0af7651916cd43dd8448eb211c80319c" {
		t.Fatalf("trace-id = %s", tid)
	}
	if sid.String() != "b7ad6b7169203331" {
		t.Fatalf("parent-id = %s", sid)
	}
	// A future version with extra fields still parses (W3C forward compat).
	if _, _, err := ParseTraceparent("01-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-extra"); err != nil {
		t.Fatalf("future version rejected: %v", err)
	}
}

func TestParseTraceparentRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"empty":              "",
		"too few fields":     "00-abc",
		"short trace id":     "00-0af7651916cd43dd-b7ad6b7169203331-01",
		"uppercase hex":      "00-0AF7651916CD43DD8448EB211C80319C-b7ad6b7169203331-01",
		"non-hex trace id":   "00-0az7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",
		"zero trace id":      "00-00000000000000000000000000000000-b7ad6b7169203331-01",
		"zero parent id":     "00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01",
		"short parent id":    "00-0af7651916cd43dd8448eb211c80319c-b7ad6b71-01",
		"bad flags":          "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-zz",
		"version ff":         "ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",
		"v00 extra fields":   "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-extra",
		"one-char version":   "0-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",
		"whitespace version": "  -0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",
	}
	for name, h := range cases {
		if _, _, err := ParseTraceparent(h); err == nil {
			t.Errorf("%s: ParseTraceparent(%q) accepted", name, h)
		}
	}
}

func TestNewIDsNonZeroAndDistinct(t *testing.T) {
	seen := map[TraceID]bool{}
	for i := 0; i < 100; i++ {
		id := NewTraceID()
		if id.IsZero() {
			t.Fatal("NewTraceID returned zero")
		}
		if seen[id] {
			t.Fatalf("duplicate trace id %s in 100 draws", id)
		}
		seen[id] = true
	}
	if NewSpanID().IsZero() {
		t.Fatal("NewSpanID returned zero")
	}
}

func TestIDsContextRoundTrip(t *testing.T) {
	if _, _, ok := IDsFromContext(context.Background()); ok {
		t.Fatal("bare context reports IDs")
	}
	if got := TraceIDStringFromContext(context.Background()); got != "" {
		t.Fatalf("bare context trace id = %q", got)
	}
	tid, sid := NewTraceID(), NewSpanID()
	ctx := WithIDs(context.Background(), tid, sid)
	gotT, gotS, ok := IDsFromContext(ctx)
	if !ok || gotT != tid || gotS != sid {
		t.Fatalf("IDsFromContext = (%s, %s, %v)", gotT, gotS, ok)
	}
	if got := TraceIDStringFromContext(ctx); got != tid.String() {
		t.Fatalf("TraceIDStringFromContext = %q, want %q", got, tid.String())
	}
}

func TestTraceIDStamp(t *testing.T) {
	var nilTr *Trace
	nilTr.SetTraceID(NewTraceID()) // must not panic
	if !nilTr.TraceID().IsZero() {
		t.Fatal("nil trace has an ID")
	}
	tr := NewTrace()
	if s := tr.Snapshot(); s.TraceID != "" {
		t.Fatalf("unstamped snapshot carries trace id %q", s.TraceID)
	}
	id := NewTraceID()
	tr.SetTraceID(id)
	if tr.TraceID() != id {
		t.Fatal("TraceID did not round-trip")
	}
	if s := tr.Snapshot(); s.TraceID != id.String() {
		t.Fatalf("snapshot trace id = %q, want %q", s.TraceID, id.String())
	}
}

// TestUntracedIDLookupZeroAlloc pins the request-identity analog of the
// cardinal obsv rule: code that checks for request IDs on a context without
// any must not allocate, so the lookups can sit on every solve path.
func TestUntracedIDLookupZeroAlloc(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(100, func() {
		if _, _, ok := IDsFromContext(ctx); ok {
			t.Fatal("unexpected IDs")
		}
		if TraceIDStringFromContext(ctx) != "" {
			t.Fatal("unexpected trace id")
		}
	})
	if allocs != 0 {
		t.Fatalf("bare-context ID lookup allocates %v per run, want 0", allocs)
	}
}
