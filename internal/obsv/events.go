package obsv

import (
	"context"
	"log/slog"
)

// The structured event sink: an optional *slog.Logger carried in the
// context. When present, the solver stack emits solve lifecycle events
// ("solve.start", "solve.finish", "solve.cancel", "solve.error",
// "batch.finish") with the solver name, instance shape and outcome as
// attributes. When absent — the default — no event code runs and nothing
// allocates.

// loggerKey carries the event logger in a context (zero-size key type, so
// lookups are allocation-free).
type loggerKey struct{}

// WithLogger returns a context whose solves emit structured lifecycle
// events through l.
func WithLogger(ctx context.Context, l *slog.Logger) context.Context {
	return context.WithValue(ctx, loggerKey{}, l)
}

// Logger returns the event logger attached to ctx, or nil.
func Logger(ctx context.Context) *slog.Logger {
	l, _ := ctx.Value(loggerKey{}).(*slog.Logger)
	return l
}
