package obsv

import (
	"context"
	"encoding/hex"
	"fmt"
	mrand "math/rand/v2"
	"strings"
)

// Request identity: every request entering the serving layer gets a TraceID
// (shared by everything done on the request's behalf, across process and
// HTTP-hop boundaries) and a SpanID (this process's unit of work). The wire
// format is the W3C Trace Context `traceparent` header,
//
//	version "-" trace-id "-" parent-id "-" trace-flags
//	   00  - 32 lowhex  - 16 lowhex -   2 hex
//
// so inbound IDs from any W3C-compliant caller are honored and outbound
// fan-out (the coming shard scatter-gather) propagates them unchanged. IDs
// ride the context separately from *Trace: the untraced path stays
// allocation-free (IDsFromContext on a bare context is a single map-free
// Value lookup), and a Trace can be stamped with its TraceID for summaries.

// TraceID is a 16-byte W3C trace-id. The zero value is invalid on the wire
// (the spec forbids all-zero IDs) and doubles as "no ID".
type TraceID [16]byte

// SpanID is an 8-byte W3C parent-id (span identifier). The zero value is
// invalid on the wire and doubles as "no ID".
type SpanID [8]byte

// IsZero reports whether the ID is the invalid all-zero value.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// IsZero reports whether the ID is the invalid all-zero value.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String renders the ID as 32 lowercase hex characters.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// String renders the ID as 16 lowercase hex characters.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// NewTraceID returns a new random, non-zero trace ID. IDs only need to be
// unique, not unpredictable, so they come from the auto-seeded math/rand/v2
// generator rather than crypto/rand.
func NewTraceID() TraceID {
	var t TraceID
	for t.IsZero() {
		putUint64(t[:8], mrand.Uint64())
		putUint64(t[8:], mrand.Uint64())
	}
	return t
}

// NewSpanID returns a new random, non-zero span ID.
func NewSpanID() SpanID {
	var s SpanID
	for s.IsZero() {
		putUint64(s[:], mrand.Uint64())
	}
	return s
}

func putUint64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (56 - 8*i))
	}
}

// ParseTraceparent parses a W3C traceparent header value. It accepts any
// known-format version except the forbidden "ff", requires lowercase hex as
// the spec does, and rejects all-zero IDs. The trace-flags byte is parsed for
// validity but not returned: this system records every request (the flight
// recorder does its own tail sampling), so the sampled bit does not change
// behavior.
func ParseTraceparent(header string) (TraceID, SpanID, error) {
	var tid TraceID
	var sid SpanID
	parts := strings.Split(header, "-")
	if len(parts) < 4 {
		return tid, sid, fmt.Errorf("obsv: traceparent %q: want version-traceid-parentid-flags", header)
	}
	ver, rest := parts[0], parts[1:4]
	if len(ver) != 2 || !isLowerHex(ver) {
		return tid, sid, fmt.Errorf("obsv: traceparent %q: bad version %q", header, ver)
	}
	if ver == "ff" {
		return tid, sid, fmt.Errorf("obsv: traceparent %q: version ff is forbidden", header)
	}
	if ver == "00" && len(parts) != 4 {
		return tid, sid, fmt.Errorf("obsv: traceparent %q: version 00 has exactly 4 fields", header)
	}
	if len(rest[0]) != 32 || !isLowerHex(rest[0]) {
		return tid, sid, fmt.Errorf("obsv: traceparent %q: bad trace-id %q", header, rest[0])
	}
	if len(rest[1]) != 16 || !isLowerHex(rest[1]) {
		return tid, sid, fmt.Errorf("obsv: traceparent %q: bad parent-id %q", header, rest[1])
	}
	if len(rest[2]) != 2 || !isLowerHex(rest[2]) {
		return tid, sid, fmt.Errorf("obsv: traceparent %q: bad trace-flags %q", header, rest[2])
	}
	if _, err := hex.Decode(tid[:], []byte(rest[0])); err != nil {
		return TraceID{}, SpanID{}, fmt.Errorf("obsv: traceparent %q: %v", header, err)
	}
	if _, err := hex.Decode(sid[:], []byte(rest[1])); err != nil {
		return TraceID{}, SpanID{}, fmt.Errorf("obsv: traceparent %q: %v", header, err)
	}
	if tid.IsZero() {
		return TraceID{}, SpanID{}, fmt.Errorf("obsv: traceparent %q: all-zero trace-id", header)
	}
	if sid.IsZero() {
		return TraceID{}, SpanID{}, fmt.Errorf("obsv: traceparent %q: all-zero parent-id", header)
	}
	return tid, sid, nil
}

// FormatTraceparent renders a version-00 traceparent header value with the
// sampled flag set (this system always records; see ParseTraceparent).
func FormatTraceparent(tid TraceID, sid SpanID) string {
	var b strings.Builder
	b.Grow(2 + 1 + 32 + 1 + 16 + 1 + 2)
	b.WriteString("00-")
	b.WriteString(tid.String())
	b.WriteByte('-')
	b.WriteString(sid.String())
	b.WriteString("-01")
	return b.String()
}

func isLowerHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// idsKey carries the request IDs in a context (zero-size key type, so the
// miss path of IDsFromContext is allocation-free).
type idsKey struct{}

type ids struct {
	trace TraceID
	span  SpanID
}

// WithIDs returns a context carrying the request's trace and span IDs for
// the stack underneath (solvers, batch workers, fault sites, metrics
// exemplars). Attach once per request.
func WithIDs(ctx context.Context, tid TraceID, sid SpanID) context.Context {
	return context.WithValue(ctx, idsKey{}, ids{trace: tid, span: sid})
}

// IDsFromContext returns the request IDs attached with WithIDs. ok is false
// on a bare context; the lookup never allocates either way.
func IDsFromContext(ctx context.Context) (tid TraceID, sid SpanID, ok bool) {
	v, ok := ctx.Value(idsKey{}).(ids)
	return v.trace, v.span, ok
}

// TraceIDStringFromContext returns the hex trace ID attached with WithIDs,
// or "" — the form metric exemplars and log attributes want. The empty path
// does not allocate; the hit path allocates the hex string.
func TraceIDStringFromContext(ctx context.Context) string {
	tid, _, ok := IDsFromContext(ctx)
	if !ok {
		return ""
	}
	return tid.String()
}
