package obsv

import (
	"context"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler returns an http.Handler rendering reg in Prometheus text
// exposition format, for mounting a /metrics endpoint on any mux.
func Handler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WriteProm(w)
	})
}

// StartServer binds addr (use a loopback address such as "localhost:0" —
// the profiler has no authentication) and serves:
//
//	/debug/pprof/...  net/http/pprof profiles
//	/debug/vars       expvar JSON (including the registry, once published)
//	/metrics          the registry in Prometheus text format
//
// It returns the bound address (useful with port 0) and a stop function
// that shuts the server down. reg may be nil to serve pprof only.
func StartServer(addr string, reg *Registry) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("obsv: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	if reg != nil {
		mux.Handle("/metrics", Handler(reg))
	}
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	stop := func() error {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		return srv.Shutdown(ctx)
	}
	return ln.Addr().String(), stop, nil
}
