package obsv

import (
	"context"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"
)

// Content types of the two exposition dialects a /metrics endpoint serves.
const (
	ContentTypeProm        = "text/plain; version=0.0.4; charset=utf-8"
	ContentTypeOpenMetrics = "application/openmetrics-text; version=1.0.0; charset=utf-8"
)

// Handler returns an http.Handler rendering reg for a /metrics endpoint,
// content-negotiated: a scraper whose Accept header names
// application/openmetrics-text gets the OpenMetrics rendering (exemplars,
// "# EOF"); everyone else gets classic 0.0.4 text with no exemplars, which
// the classic parser requires.
func Handler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if acceptsOpenMetrics(r.Header.Get("Accept")) {
			w.Header().Set("Content-Type", ContentTypeOpenMetrics)
			_ = reg.WriteOpenMetrics(w)
			return
		}
		w.Header().Set("Content-Type", ContentTypeProm)
		_ = reg.WriteProm(w)
	})
}

// acceptsOpenMetrics reports whether an Accept header asks for the
// OpenMetrics text format. Media types are matched exactly; q-values are not
// weighed (a scraper sending "application/openmetrics-text;q=0" would be
// over-served, which real scrapers never do).
func acceptsOpenMetrics(accept string) bool {
	for _, part := range strings.Split(accept, ",") {
		mediaType, _, _ := strings.Cut(part, ";")
		if strings.TrimSpace(mediaType) == "application/openmetrics-text" {
			return true
		}
	}
	return false
}

// StartServer binds addr (use a loopback address such as "localhost:0" —
// the profiler has no authentication) and serves:
//
//	/debug/pprof/...  net/http/pprof profiles
//	/debug/vars       expvar JSON (including the registry, once published)
//	/metrics          the registry in Prometheus text format
//
// It returns the bound address (useful with port 0) and a stop function
// that shuts the server down. reg may be nil to serve pprof only.
func StartServer(addr string, reg *Registry) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("obsv: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	if reg != nil {
		mux.Handle("/metrics", Handler(reg))
	}
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	stop := func() error {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		return srv.Shutdown(ctx)
	}
	return ln.Addr().String(), stop, nil
}
