package obsv

import (
	"expvar"
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry is a process-level set of named counters, gauges and histograms.
// Metrics are created once (get-or-create by name) and updated lock-free on
// the hot path; rendering takes the registry lock. The zero value is not
// usable; call NewRegistry or use Default.
type Registry struct {
	mu      sync.Mutex
	order   []string // insertion order for stable output
	metrics map[string]metric

	expvarOnce sync.Once
}

// metric is the common behavior of every registered instrument.
type metric interface {
	help() string
	promType() string
	// writeProm appends the metric's sample lines (no HELP/TYPE headers).
	// exemplars selects the OpenMetrics dialect: sample lines may carry
	// exemplar suffixes, which the classic Prometheus text parser rejects.
	writeProm(w io.Writer, name string, exemplars bool)
	// value returns the expvar representation.
	value() any
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]metric)}
}

// Default is the library-wide registry the solver stack records into; the
// cmd tools publish and dump it.
var Default = NewRegistry()

var nameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// register returns the existing metric under name or installs make()'s
// result. A name reused with a different instrument kind is a programming
// error and panics, as does a name that is not a valid Prometheus metric
// name.
func (r *Registry) register(name string, make func() metric) metric {
	if !nameRE.MatchString(name) {
		panic(fmt.Sprintf("obsv: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		return m
	}
	m := make()
	r.metrics[name] = m
	r.order = append(r.order, name)
	return m
}

// Counter is a monotonically increasing int64 metric.
type Counter struct {
	helpText string
	v        atomic.Int64
}

// Add increments the counter; negative deltas are a programming error but
// are applied as-is (the dump will show it).
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) help() string     { return c.helpText }
func (c *Counter) promType() string { return "counter" }
func (c *Counter) value() any       { return c.Value() }
func (c *Counter) writeProm(w io.Writer, name string, _ bool) {
	fmt.Fprintf(w, "%s %d\n", name, c.Value())
}

// Counter returns the counter registered under name, creating it on first
// use. Panics if name is registered as a different kind.
func (r *Registry) Counter(name, help string) *Counter {
	m := r.register(name, func() metric { return &Counter{helpText: help} })
	c, ok := m.(*Counter)
	if !ok {
		panic(fmt.Sprintf("obsv: metric %q already registered as %s", name, m.promType()))
	}
	return c
}

// Gauge is a float64 metric that can go up and down.
type Gauge struct {
	helpText string
	bits     atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Add shifts the gauge by delta atomically (CAS loop), for gauges tracking a
// level — queue depth, busy workers — rather than a sampled measurement.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		v := math.Float64frombits(old) + delta
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

func (g *Gauge) help() string     { return g.helpText }
func (g *Gauge) promType() string { return "gauge" }
func (g *Gauge) value() any       { return g.Value() }
func (g *Gauge) writeProm(w io.Writer, name string, _ bool) {
	fmt.Fprintf(w, "%s %s\n", name, promFloat(g.Value()))
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	m := r.register(name, func() metric { return &Gauge{helpText: help} })
	g, ok := m.(*Gauge)
	if !ok {
		panic(fmt.Sprintf("obsv: metric %q already registered as %s", name, m.promType()))
	}
	return g
}

// DefBuckets are the default histogram buckets, spanning microseconds to
// tens of seconds — the observed range of a solve.
var DefBuckets = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1, 10, 60}

// Histogram is a cumulative-bucket duration/size distribution.
type Histogram struct {
	helpText string
	bounds   []float64 // sorted upper bounds, +Inf implicit

	mu        sync.Mutex
	counts    []uint64 // one per bound, plus the +Inf overflow at the end
	sum       float64
	total     uint64
	exemplars []exemplar // lazily sized like counts; zero TraceID = none
}

// exemplar links one observed sample to the trace that produced it, kept
// per native (non-cumulative) bucket — the newest sample wins, which is what
// "show me a trace for this latency band" wants.
type exemplar struct {
	traceID string
	value   float64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.ObserveExemplar(v, "")
}

// ObserveExemplar records one sample and, when traceID is non-empty, makes
// it the sample's bucket exemplar: WriteOpenMetrics renders the trace ID on
// that bucket's line in OpenMetrics exemplar syntax, linking the metric to
// the flight-recorder record and the distributed trace. A classic WriteProm
// scrape never sees exemplars. An empty traceID is exactly Observe.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	h.mu.Lock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.total++
	if traceID != "" {
		if h.exemplars == nil {
			h.exemplars = make([]exemplar, len(h.bounds)+1)
		}
		h.exemplars[i] = exemplar{traceID: traceID, value: v}
	}
	h.mu.Unlock()
}

// Count returns the number of samples observed.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// Sum returns the sum of all observed samples.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

func (h *Histogram) help() string     { return h.helpText }
func (h *Histogram) promType() string { return "histogram" }
func (h *Histogram) value() any {
	h.mu.Lock()
	defer h.mu.Unlock()
	return map[string]any{"count": h.total, "sum": h.sum}
}

func (h *Histogram) writeProm(w io.Writer, name string, exemplars bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	cum := uint64(0)
	for i, b := range h.bounds {
		cum += h.counts[i]
		fmt.Fprintf(w, "%s_bucket{le=%q} %d%s\n", name, promFloat(b), cum, h.exemplarSuffix(i, exemplars))
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d%s\n", name, h.total, h.exemplarSuffix(len(h.bounds), exemplars))
	fmt.Fprintf(w, "%s_sum %s\n", name, promFloat(h.sum))
	fmt.Fprintf(w, "%s_count %d\n", name, h.total)
}

// exemplarSuffix renders bucket i's exemplar in OpenMetrics syntax
// (` # {trace_id="…"} value`), or "". Caller holds h.mu. The exemplar rides
// the cumulative bucket line of the native bucket its sample fell in, so its
// value always lies within the line's le bound as OpenMetrics requires. The
// suffix is only emitted in the OpenMetrics dialect: the classic Prometheus
// text parser allows nothing but a timestamp after the value, so a '#' there
// would fail the whole scrape.
func (h *Histogram) exemplarSuffix(i int, exemplars bool) string {
	if !exemplars || h.exemplars == nil || h.exemplars[i].traceID == "" {
		return ""
	}
	return fmt.Sprintf(" # {trace_id=%q} %s", h.exemplars[i].traceID, promFloat(h.exemplars[i].value))
}

// Histogram returns the histogram registered under name, creating it with
// the given bucket upper bounds (nil means DefBuckets) on first use.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	m := r.register(name, func() metric {
		if buckets == nil {
			buckets = DefBuckets
		}
		bounds := append([]float64(nil), buckets...)
		sort.Float64s(bounds)
		return &Histogram{helpText: help, bounds: bounds, counts: make([]uint64, len(bounds)+1)}
	})
	h, ok := m.(*Histogram)
	if !ok {
		panic(fmt.Sprintf("obsv: metric %q already registered as %s", name, m.promType()))
	}
	return h
}

// promFloat formats a float the way Prometheus expects (no exponent for
// common values, +Inf spelled out).
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteProm renders every metric in classic Prometheus text exposition
// format (version 0.0.4): # HELP / # TYPE headers followed by sample lines,
// in registration order. Exemplars are never rendered here — the 0.0.4
// parser rejects anything but a timestamp after a sample value, so a single
// exemplar suffix would break every standard scrape. Use WriteOpenMetrics
// for the exemplar-carrying dialect.
func (r *Registry) WriteProm(w io.Writer) error {
	return r.write(w, false)
}

// WriteOpenMetrics renders every metric in OpenMetrics text format: the same
// families as WriteProm, plus exemplar suffixes on histogram bucket lines,
// counter family names with the mandatory "_total" sample suffix stripped
// from the HELP/TYPE headers (per the OpenMetrics naming rule; sample names
// are unchanged), and the required terminating "# EOF" line. Serve it only
// to scrapers that negotiated Content-Type application/openmetrics-text.
func (r *Registry) WriteOpenMetrics(w io.Writer) error {
	return r.write(w, true)
}

func (r *Registry) write(w io.Writer, openMetrics bool) error {
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	metrics := make([]metric, len(names))
	for i, n := range names {
		metrics[i] = r.metrics[n]
	}
	r.mu.Unlock()

	var sb strings.Builder
	for i, name := range names {
		m := metrics[i]
		family := name
		if openMetrics && m.promType() == "counter" {
			family = strings.TrimSuffix(name, "_total")
		}
		if h := m.help(); h != "" {
			fmt.Fprintf(&sb, "# HELP %s %s\n", family, strings.ReplaceAll(h, "\n", " "))
		}
		fmt.Fprintf(&sb, "# TYPE %s %s\n", family, m.promType())
		m.writeProm(&sb, name, openMetrics)
	}
	if openMetrics {
		sb.WriteString("# EOF\n")
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// ExpvarFunc returns an expvar.Var rendering the registry as a JSON object
// of name → value (histograms as {count, sum}).
func (r *Registry) ExpvarFunc() expvar.Var {
	return expvar.Func(func() any {
		r.mu.Lock()
		names := append([]string(nil), r.order...)
		metrics := make([]metric, len(names))
		for i, n := range names {
			metrics[i] = r.metrics[n]
		}
		r.mu.Unlock()
		out := make(map[string]any, len(names))
		for i, n := range names {
			out[n] = metrics[i].value()
		}
		return out
	})
}

// PublishExpvar publishes the registry under the given expvar name, once;
// repeated calls (including under the same name from different tools in one
// process) are no-ops rather than expvar.Publish panics.
func (r *Registry) PublishExpvar(name string) {
	r.expvarOnce.Do(func() {
		if expvar.Get(name) == nil {
			expvar.Publish(name, r.ExpvarFunc())
		}
	})
}

// promLineRE validates one Prometheus sample line: a metric name, an
// optional label set, and a float value (optional timestamp tolerated).
var promLineRE = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? (NaN|[+-]?Inf|[-+]?[0-9]*\.?[0-9]+([eE][-+]?[0-9]+)?)( [0-9]+)?$`)

// promExemplarRE validates the OpenMetrics exemplar clause that may follow a
// sample value after " # ": a (possibly empty) label set, the exemplar
// value, and an optional float timestamp.
var promExemplarRE = regexp.MustCompile(
	`^\{([a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*)?\} (NaN|[+-]?Inf|[-+]?[0-9]*\.?[0-9]+([eE][-+]?[0-9]+)?)( [0-9]+(\.[0-9]+)?)?$`)

// LintProm checks that text parses as Prometheus text exposition format,
// extended with the OpenMetrics additions WriteOpenMetrics emits: exemplar
// clauses on sample lines and a "# EOF" terminator (see DESIGN.md §13). It
// is intentionally strict about the grammar and gates the full live registry
// in tests — both the classic and the OpenMetrics rendering must pass.
func LintProm(text string) error {
	for i, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if line != "# EOF" && !strings.HasPrefix(line, "# HELP ") && !strings.HasPrefix(line, "# TYPE ") {
				return fmt.Errorf("line %d: comment is neither HELP, TYPE nor EOF: %q", i+1, line)
			}
			continue
		}
		if promLineRE.MatchString(line) {
			continue
		}
		// Not a bare sample: the line must be a sample plus an exemplar
		// clause. The separator is the first " # " whose prefix is itself a
		// complete sample line — a quoted label value may legally contain
		// " # ", but then the prefix up to that point has an unclosed quote
		// and cannot match, so scanning forward finds the true separator.
		ex, found := "", false
		for j := strings.Index(line, " # "); j >= 0; {
			if promLineRE.MatchString(line[:j]) {
				ex, found = line[j+3:], true
				break
			}
			k := strings.Index(line[j+1:], " # ")
			if k < 0 {
				break
			}
			j += 1 + k
		}
		if !found {
			return fmt.Errorf("line %d: not a valid sample line: %q", i+1, line)
		}
		if !promExemplarRE.MatchString(ex) {
			return fmt.Errorf("line %d: not a valid exemplar clause: %q", i+1, ex)
		}
	}
	return nil
}
