package obsv

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestNilTraceIsSafe(t *testing.T) {
	var tr *Trace
	tr.Count("x", 1)
	tr.Event("x", 2)
	sp := tr.StartSpan("phase")
	sp.End()
	if got := tr.Counter("x"); got != 0 {
		t.Fatalf("nil counter = %d, want 0", got)
	}
	s := tr.Snapshot()
	if len(s.Counters) != 0 || len(s.Phases) != 0 || len(s.Events) != 0 {
		t.Fatalf("nil snapshot not empty: %+v", s)
	}
	if got := s.String(); got != "(empty trace)\n" {
		t.Fatalf("empty summary String = %q", got)
	}
}

func TestNilPathZeroAlloc(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(100, func() {
		tr := FromContext(ctx)
		tr.Count("nodes", 10)
		sp := tr.StartSpan("solve")
		tr.Event("incumbent", 3)
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("nil-trace path allocates %v per run, want 0", allocs)
	}
}

func TestFromContextRoundTrip(t *testing.T) {
	if FromContext(context.Background()) != nil {
		t.Fatal("FromContext on bare context should be nil")
	}
	tr := NewTrace()
	ctx := WithTrace(context.Background(), tr)
	if FromContext(ctx) != tr {
		t.Fatal("FromContext did not return the attached trace")
	}
}

func TestCountersSpansEvents(t *testing.T) {
	tr := NewTrace()
	tr.Count("nodes", 5)
	tr.Count("nodes", 7)
	tr.Count("pruned", 1)
	if got := tr.Counter("nodes"); got != 12 {
		t.Fatalf("nodes = %d, want 12", got)
	}

	sp := tr.StartSpan("bnb")
	time.Sleep(time.Millisecond)
	sp.End()
	tr.StartSpan("bnb").End()
	tr.StartSpan("encode").End()
	tr.Event("incumbent", 4)

	s := tr.Snapshot()
	if s.Counters["nodes"] != 12 || s.Counters["pruned"] != 1 {
		t.Fatalf("counters = %v", s.Counters)
	}
	byName := map[string]PhaseStat{}
	for _, p := range s.Phases {
		byName[p.Name] = p
	}
	if byName["bnb"].Count != 2 {
		t.Fatalf("bnb span count = %d, want 2", byName["bnb"].Count)
	}
	if byName["bnb"].Seconds < 0.001 {
		t.Fatalf("bnb span seconds = %v, want >= 1ms", byName["bnb"].Seconds)
	}
	if byName["encode"].Count != 1 {
		t.Fatalf("encode span count = %d", byName["encode"].Count)
	}
	// Phases sorted by descending seconds: bnb (slept) must come first.
	if s.Phases[0].Name != "bnb" {
		t.Fatalf("phase order = %v, want bnb first", s.Phases)
	}
	if len(s.Events) != 1 || s.Events[0].Name != "incumbent" || s.Events[0].Value != 4 {
		t.Fatalf("events = %v", s.Events)
	}
	if s.Events[0].AtSeconds < 0 {
		t.Fatalf("event timestamp negative: %v", s.Events[0])
	}

	out := s.String()
	for _, want := range []string{"phase bnb", "count nodes", "event incumbent"} {
		if !strings.Contains(out, want) {
			t.Fatalf("String() missing %q:\n%s", want, out)
		}
	}
	if _, err := json.Marshal(s); err != nil {
		t.Fatalf("summary not JSON-marshalable: %v", err)
	}
}

func TestEventCap(t *testing.T) {
	tr := NewTrace()
	for i := 0; i < maxEvents+10; i++ {
		tr.Event("e", int64(i))
	}
	s := tr.Snapshot()
	if len(s.Events) != maxEvents {
		t.Fatalf("events = %d, want %d", len(s.Events), maxEvents)
	}
	if s.DroppedEvents != 10 {
		t.Fatalf("dropped = %d, want 10", s.DroppedEvents)
	}
}

func TestConcurrentTrace(t *testing.T) {
	tr := NewTrace()
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 100; i++ {
				tr.Count("n", 1)
				sp := tr.StartSpan("p")
				sp.End()
				tr.Event("e", 1)
			}
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if got := tr.Counter("n"); got != 800 {
		t.Fatalf("n = %d, want 800", got)
	}
}

func TestSummaryMerge(t *testing.T) {
	a := Summary{
		Counters: map[string]int64{"nodes": 3},
		Phases:   []PhaseStat{{Name: "solve", Count: 1, Seconds: 0.5}},
		Events:   []Event{{Name: "x", Value: 1}},
	}
	b := Summary{
		Counters:      map[string]int64{"nodes": 2, "pruned": 4},
		Phases:        []PhaseStat{{Name: "solve", Count: 1, Seconds: 0.25}, {Name: "mine", Count: 2, Seconds: 0.1}},
		Events:        []Event{{Name: "y", Value: 2}},
		DroppedEvents: 1,
	}
	a.Merge(b)
	if a.Counters["nodes"] != 5 || a.Counters["pruned"] != 4 {
		t.Fatalf("merged counters = %v", a.Counters)
	}
	byName := map[string]PhaseStat{}
	for _, p := range a.Phases {
		byName[p.Name] = p
	}
	if p := byName["solve"]; p.Count != 2 || p.Seconds != 0.75 {
		t.Fatalf("merged solve phase = %+v", p)
	}
	if p := byName["mine"]; p.Count != 2 {
		t.Fatalf("merged mine phase = %+v", p)
	}
	if len(a.Events) != 2 || a.DroppedEvents != 1 {
		t.Fatalf("merged events = %v dropped = %d", a.Events, a.DroppedEvents)
	}

	var zero Summary
	zero.Merge(a)
	if zero.Counters["nodes"] != 5 {
		t.Fatalf("merge into zero summary: %v", zero.Counters)
	}
}

func TestLoggerContext(t *testing.T) {
	if Logger(context.Background()) != nil {
		t.Fatal("Logger on bare context should be nil")
	}
}
