package obsv

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestRegistryPromOutput(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("solves_total", "Total solves started.")
	c.Add(3)
	g := r.Gauge("workers", "Configured batch workers.")
	g.Set(4)
	h := r.Histogram("solve_seconds", "Solve wall time.", nil)
	h.Observe(0.002)
	h.Observe(0.5)
	h.Observe(120) // beyond the last bucket → +Inf slot

	var sb strings.Builder
	if err := r.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP solves_total Total solves started.",
		"# TYPE solves_total counter",
		"solves_total 3",
		"# TYPE workers gauge",
		"workers 4",
		"# TYPE solve_seconds histogram",
		`solve_seconds_bucket{le="0.01"} 1`,
		`solve_seconds_bucket{le="1"} 2`,
		`solve_seconds_bucket{le="+Inf"} 3`,
		"solve_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteProm output missing %q:\n%s", want, out)
		}
	}
	if err := LintProm(out); err != nil {
		t.Fatalf("WriteProm output fails LintProm: %v\n%s", err, out)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("c", "h")
	b := r.Counter("c", "other help ignored")
	if a != b {
		t.Fatal("Counter with same name returned distinct metrics")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	r.Gauge("c", "wrong kind")
}

func TestRegistryInvalidName(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("invalid name did not panic")
		}
	}()
	r.Counter("bad name!", "h")
}

func TestExpvarFunc(t *testing.T) {
	r := NewRegistry()
	r.Counter("n", "h").Add(7)
	r.Histogram("d", "h", []float64{1}).Observe(0.5)
	v := r.ExpvarFunc()
	var got map[string]any
	if err := json.Unmarshal([]byte(v.String()), &got); err != nil {
		t.Fatalf("expvar output not JSON: %v (%s)", err, v.String())
	}
	if got["n"].(float64) != 7 {
		t.Fatalf("expvar n = %v", got["n"])
	}
	d := got["d"].(map[string]any)
	if d["count"].(float64) != 1 || d["sum"].(float64) != 0.5 {
		t.Fatalf("expvar d = %v", d)
	}
}

func TestPublishExpvarIdempotent(t *testing.T) {
	r := NewRegistry()
	r.PublishExpvar("obsv_test_metrics")
	r.PublishExpvar("obsv_test_metrics") // must not panic
	r2 := NewRegistry()
	r2.PublishExpvar("obsv_test_metrics") // duplicate name from another registry: no panic
}

func TestLintPromRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"not a metric line at all!",
		"# BOGUS comment kind",
		`name{unterminated="x} 1`,
	} {
		if err := LintProm(bad); err == nil {
			t.Errorf("LintProm accepted %q", bad)
		}
	}
	if err := LintProm(""); err != nil {
		t.Errorf("LintProm rejected empty input: %v", err)
	}
}

func TestStartServer(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits", "h").Add(1)
	addr, stop, err := StartServer("localhost:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := stop(); err != nil {
			t.Errorf("stop: %v", err)
		}
	}()

	get := func(path string) string {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", addr, path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	metrics := get("/metrics")
	if !strings.Contains(metrics, "hits 1") {
		t.Fatalf("/metrics missing counter:\n%s", metrics)
	}
	if err := LintProm(metrics); err != nil {
		t.Fatalf("/metrics fails lint: %v", err)
	}
	if !strings.Contains(get("/debug/pprof/"), "pprof") {
		t.Fatal("/debug/pprof/ index not served")
	}
	vars := get("/debug/vars")
	var anyJSON map[string]any
	if err := json.Unmarshal([]byte(vars), &anyJSON); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}
}

func TestHistogramExemplars(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "Latency.", []float64{0.01, 1})
	h.ObserveExemplar(0.002, "0af7651916cd43dd8448eb211c80319c")
	h.ObserveExemplar(0.5, "b7ad6b7169203331b7ad6b7169203331")
	h.Observe(0.003) // no exemplar; must not clobber the bucket's

	var sb strings.Builder
	if err := r.WriteOpenMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`lat_seconds_bucket{le="0.01"} 2 # {trace_id="0af7651916cd43dd8448eb211c80319c"} 0.002`,
		`lat_seconds_bucket{le="1"} 3 # {trace_id="b7ad6b7169203331b7ad6b7169203331"} 0.5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exemplar line missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, `le="+Inf"} 3 #`) {
		t.Errorf("+Inf bucket grew an exemplar it never observed:\n%s", out)
	}
	if !strings.HasSuffix(out, "# EOF\n") {
		t.Errorf("OpenMetrics output not terminated with # EOF:\n%s", out)
	}
	if err := LintProm(out); err != nil {
		t.Fatalf("exemplar output fails LintProm: %v\n%s", err, out)
	}

	// The classic 0.0.4 rendering must never carry exemplar suffixes — the
	// classic parser rejects anything but a timestamp after the value.
	sb.Reset()
	if err := r.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	if classic := sb.String(); strings.Contains(classic, " # ") {
		t.Fatalf("classic WriteProm output carries an exemplar suffix:\n%s", classic)
	}

	// The newest sample in a bucket wins.
	h.ObserveExemplar(0.004, "cccccccccccccccccccccccccccccccc")
	sb.Reset()
	_ = r.WriteOpenMetrics(&sb)
	if !strings.Contains(sb.String(), `# {trace_id="cccccccccccccccccccccccccccccccc"} 0.004`) {
		t.Fatalf("newest exemplar did not replace the old one:\n%s", sb.String())
	}
}

// TestWriteOpenMetricsCounterFamilies pins the OpenMetrics counter naming
// rule: HELP/TYPE headers drop the mandatory "_total" sample suffix while
// sample lines keep it.
func TestWriteOpenMetricsCounterFamilies(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits_total", "Total hits.").Add(2)
	var sb strings.Builder
	if err := r.WriteOpenMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP hits Total hits.\n",
		"# TYPE hits counter\n",
		"hits_total 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("OpenMetrics counter output missing %q:\n%s", want, out)
		}
	}
	sb.Reset()
	if err := r.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	if classic := sb.String(); !strings.Contains(classic, "# TYPE hits_total counter\n") {
		t.Errorf("classic output must keep the full counter name in TYPE:\n%s", classic)
	}
}

// TestHandlerContentNegotiation pins the /metrics dialect switch: a plain
// scrape gets classic 0.0.4 text with no exemplars; an Accept header naming
// application/openmetrics-text gets exemplars and the # EOF terminator.
func TestHandlerContentNegotiation(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "Latency.", []float64{1})
	h.ObserveExemplar(0.5, "0af7651916cd43dd8448eb211c80319c")
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	get := func(accept string) (string, string) {
		req, err := http.NewRequest(http.MethodGet, srv.URL, nil)
		if err != nil {
			t.Fatal(err)
		}
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b), resp.Header.Get("Content-Type")
	}

	classic, ct := get("")
	if ct != ContentTypeProm {
		t.Errorf("plain scrape Content-Type = %q, want %q", ct, ContentTypeProm)
	}
	if strings.Contains(classic, " # ") || strings.Contains(classic, "# EOF") {
		t.Errorf("plain scrape carries OpenMetrics syntax:\n%s", classic)
	}
	if err := LintProm(classic); err != nil {
		t.Errorf("plain scrape fails lint: %v", err)
	}

	om, ct := get("application/openmetrics-text; version=1.0.0; charset=utf-8, text/plain;q=0.5")
	if ct != ContentTypeOpenMetrics {
		t.Errorf("OpenMetrics scrape Content-Type = %q, want %q", ct, ContentTypeOpenMetrics)
	}
	if !strings.Contains(om, `# {trace_id="0af7651916cd43dd8448eb211c80319c"} 0.5`) {
		t.Errorf("OpenMetrics scrape missing exemplar:\n%s", om)
	}
	if !strings.HasSuffix(om, "# EOF\n") {
		t.Errorf("OpenMetrics scrape not terminated with # EOF:\n%s", om)
	}
	if err := LintProm(om); err != nil {
		t.Errorf("OpenMetrics scrape fails lint: %v", err)
	}
}

func TestLintPromExemplarGrammar(t *testing.T) {
	for _, good := range []string{
		`m_bucket{le="1"} 3 # {trace_id="abc"} 0.5`,
		`m_bucket{le="+Inf"} 3 # {} 0.5`,
		`m_bucket{le="1"} 3 # {trace_id="abc",span_id="def"} 0.5 1234.5`,
		`m{a="x # y"} 1`,                        // " # " inside a quoted label value is part of the sample
		`m{a="x # y"} 1 # {trace_id="abc"} 0.5`, // ... even with a real exemplar clause after it
		`m{a="x # y"} 1 # {b="p # q"} 0.5`,      // ... and inside the exemplar's own label values
		"# EOF",
	} {
		if err := LintProm(good); err != nil {
			t.Errorf("LintProm rejected valid exemplar line %q: %v", good, err)
		}
	}
	for _, bad := range []string{
		`m_bucket{le="1"} 3 # trace_id="abc" 0.5`, // no braces
		`m_bucket{le="1"} 3 # {trace_id=abc} 0.5`, // unquoted value
		`m_bucket{le="1"} 3 # {trace_id="abc"}`,   // missing value
		`m_bucket{le="1"} 3 #`,                    // dangling hash
	} {
		if err := LintProm(bad); err == nil {
			t.Errorf("LintProm accepted malformed exemplar line %q", bad)
		}
	}
}
