package obsv

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestRegistryPromOutput(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("solves_total", "Total solves started.")
	c.Add(3)
	g := r.Gauge("workers", "Configured batch workers.")
	g.Set(4)
	h := r.Histogram("solve_seconds", "Solve wall time.", nil)
	h.Observe(0.002)
	h.Observe(0.5)
	h.Observe(120) // beyond the last bucket → +Inf slot

	var sb strings.Builder
	if err := r.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP solves_total Total solves started.",
		"# TYPE solves_total counter",
		"solves_total 3",
		"# TYPE workers gauge",
		"workers 4",
		"# TYPE solve_seconds histogram",
		`solve_seconds_bucket{le="0.01"} 1`,
		`solve_seconds_bucket{le="1"} 2`,
		`solve_seconds_bucket{le="+Inf"} 3`,
		"solve_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteProm output missing %q:\n%s", want, out)
		}
	}
	if err := LintProm(out); err != nil {
		t.Fatalf("WriteProm output fails LintProm: %v\n%s", err, out)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("c", "h")
	b := r.Counter("c", "other help ignored")
	if a != b {
		t.Fatal("Counter with same name returned distinct metrics")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	r.Gauge("c", "wrong kind")
}

func TestRegistryInvalidName(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("invalid name did not panic")
		}
	}()
	r.Counter("bad name!", "h")
}

func TestExpvarFunc(t *testing.T) {
	r := NewRegistry()
	r.Counter("n", "h").Add(7)
	r.Histogram("d", "h", []float64{1}).Observe(0.5)
	v := r.ExpvarFunc()
	var got map[string]any
	if err := json.Unmarshal([]byte(v.String()), &got); err != nil {
		t.Fatalf("expvar output not JSON: %v (%s)", err, v.String())
	}
	if got["n"].(float64) != 7 {
		t.Fatalf("expvar n = %v", got["n"])
	}
	d := got["d"].(map[string]any)
	if d["count"].(float64) != 1 || d["sum"].(float64) != 0.5 {
		t.Fatalf("expvar d = %v", d)
	}
}

func TestPublishExpvarIdempotent(t *testing.T) {
	r := NewRegistry()
	r.PublishExpvar("obsv_test_metrics")
	r.PublishExpvar("obsv_test_metrics") // must not panic
	r2 := NewRegistry()
	r2.PublishExpvar("obsv_test_metrics") // duplicate name from another registry: no panic
}

func TestLintPromRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"not a metric line at all!",
		"# BOGUS comment kind",
		`name{unterminated="x} 1`,
	} {
		if err := LintProm(bad); err == nil {
			t.Errorf("LintProm accepted %q", bad)
		}
	}
	if err := LintProm(""); err != nil {
		t.Errorf("LintProm rejected empty input: %v", err)
	}
}

func TestStartServer(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits", "h").Add(1)
	addr, stop, err := StartServer("localhost:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := stop(); err != nil {
			t.Errorf("stop: %v", err)
		}
	}()

	get := func(path string) string {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", addr, path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	metrics := get("/metrics")
	if !strings.Contains(metrics, "hits 1") {
		t.Fatalf("/metrics missing counter:\n%s", metrics)
	}
	if err := LintProm(metrics); err != nil {
		t.Fatalf("/metrics fails lint: %v", err)
	}
	if !strings.Contains(get("/debug/pprof/"), "pprof") {
		t.Fatal("/debug/pprof/ index not served")
	}
	vars := get("/debug/vars")
	var anyJSON map[string]any
	if err := json.Unmarshal([]byte(vars), &anyJSON); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}
}

func TestHistogramExemplars(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "Latency.", []float64{0.01, 1})
	h.ObserveExemplar(0.002, "0af7651916cd43dd8448eb211c80319c")
	h.ObserveExemplar(0.5, "b7ad6b7169203331b7ad6b7169203331")
	h.Observe(0.003) // no exemplar; must not clobber the bucket's

	var sb strings.Builder
	if err := r.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`lat_seconds_bucket{le="0.01"} 2 # {trace_id="0af7651916cd43dd8448eb211c80319c"} 0.002`,
		`lat_seconds_bucket{le="1"} 3 # {trace_id="b7ad6b7169203331b7ad6b7169203331"} 0.5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exemplar line missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, `le="+Inf"} 3 #`) {
		t.Errorf("+Inf bucket grew an exemplar it never observed:\n%s", out)
	}
	if err := LintProm(out); err != nil {
		t.Fatalf("exemplar output fails LintProm: %v\n%s", err, out)
	}

	// The newest sample in a bucket wins.
	h.ObserveExemplar(0.004, "cccccccccccccccccccccccccccccccc")
	sb.Reset()
	_ = r.WriteProm(&sb)
	if !strings.Contains(sb.String(), `# {trace_id="cccccccccccccccccccccccccccccccc"} 0.004`) {
		t.Fatalf("newest exemplar did not replace the old one:\n%s", sb.String())
	}
}

func TestLintPromExemplarGrammar(t *testing.T) {
	for _, good := range []string{
		`m_bucket{le="1"} 3 # {trace_id="abc"} 0.5`,
		`m_bucket{le="+Inf"} 3 # {} 0.5`,
		`m_bucket{le="1"} 3 # {trace_id="abc",span_id="def"} 0.5 1234.5`,
	} {
		if err := LintProm(good); err != nil {
			t.Errorf("LintProm rejected valid exemplar line %q: %v", good, err)
		}
	}
	for _, bad := range []string{
		`m_bucket{le="1"} 3 # trace_id="abc" 0.5`, // no braces
		`m_bucket{le="1"} 3 # {trace_id=abc} 0.5`, // unquoted value
		`m_bucket{le="1"} 3 # {trace_id="abc"}`,   // missing value
		`m_bucket{le="1"} 3 #`,                    // dangling hash
	} {
		if err := LintProm(bad); err == nil {
			t.Errorf("LintProm accepted malformed exemplar line %q", bad)
		}
	}
}
