package obsv

import (
	"encoding/json"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// The flight recorder: an always-on, fixed-size, lock-free ring of
// completed-request records, so a live server can always answer "what just
// happened" — which requests were slow, shed, degraded, faulted, or panicked
// — without any external tracing backend. Writes are a handful of atomic ops
// (a sequence claim and a slot CAS that refuses to overwrite a newer record,
// so a writer stalled across a full ring wrap cannot clobber newer history),
// cheap enough to leave on under full load; readers snapshot the ring
// without blocking writers.
//
// Tail sampling biases the bounded ring toward interesting traffic: records
// that errored, shed, degraded, panicked, hit an injected fault, or ran
// slower than the recorder's threshold are always kept, while boring
// successes are kept 1-in-SampleEvery. The decision happens at request end
// (tail), when the outcome is known — head sampling would have to guess.

// Record is one completed request as the flight recorder keeps it. Records
// are immutable once handed to Flight.Record.
type Record struct {
	// Seq is the recorder's own monotone sequence number (1-based, assigned
	// at keep time); it orders records and survives ring wrap.
	Seq uint64 `json:"seq"`
	// TraceID is the request's distributed trace ID (32 hex chars).
	TraceID string `json:"trace_id"`
	// Route is the request path, e.g. "/solve".
	Route string `json:"route"`
	// Status is the HTTP status served.
	Status int `json:"status"`
	// Start is the request's arrival time.
	Start time.Time `json:"start"`
	// LatencyMS is the wall time from arrival to response, in milliseconds.
	LatencyMS float64 `json:"latency_ms"`
	// Algo is the requested algorithm; Solver the ladder rung that actually
	// answered (empty on non-solve routes).
	Algo   string `json:"algo,omitempty"`
	Solver string `json:"solver,omitempty"`
	// Outcome flags. Slow is stamped by Record against the recorder's
	// threshold; the others are the caller's.
	Degraded bool `json:"degraded,omitempty"`
	Shed     bool `json:"shed,omitempty"`
	Panic    bool `json:"panic,omitempty"`
	Fault    bool `json:"fault,omitempty"`
	Slow     bool `json:"slow,omitempty"`
	// Partial marks a shard-coordinator response computed over a subset of
	// shards: an exact lower bound, served instead of an error (DESIGN.md §15).
	Partial bool `json:"partial,omitempty"`
	// Error carries the response's error message, if any.
	Error string `json:"error,omitempty"`
	// Trace is the request's trace summary (phases, counters, events).
	Trace *Summary `json:"trace,omitempty"`
}

// Interesting reports whether the record must survive tail sampling:
// anything that was not a plain fast success.
func (r *Record) Interesting() bool {
	return r.Status >= 400 || r.Degraded || r.Shed || r.Panic || r.Fault || r.Slow ||
		r.Partial || r.Error != ""
}

// Flight is the fixed-size lock-free flight-recorder ring. A nil *Flight is
// valid and inert (Record keeps nothing, Snapshot is empty), which is the
// "recorder disabled" switch. Construct with NewFlight.
type Flight struct {
	slots       []atomic.Pointer[Record]
	seq         atomic.Uint64 // kept records; claims ring slots
	seen        atomic.Uint64 // all offered records, kept or not
	sampledOut  atomic.Uint64 // boring records dropped by sampling
	sampleEvery uint64
	slow        time.Duration
}

// NewFlight builds a recorder holding the last size kept records. slow is
// the latency threshold above which a request counts as interesting (≤ 0
// disables the slow flag). sampleEvery keeps 1-in-N boring successes (≤ 1
// keeps all). A size ≤ 0 returns nil — the disabled recorder.
func NewFlight(size int, slow time.Duration, sampleEvery int) *Flight {
	if size <= 0 {
		return nil
	}
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	return &Flight{
		slots:       make([]atomic.Pointer[Record], size),
		sampleEvery: uint64(sampleEvery),
		slow:        slow,
	}
}

// SlowThreshold returns the recorder's slow-request latency threshold.
func (f *Flight) SlowThreshold() time.Duration {
	if f == nil {
		return 0
	}
	return f.slow
}

// Record offers one completed request to the ring. It stamps r.Slow from the
// recorder's threshold, applies tail sampling, and reports whether the
// record was kept. r must not be mutated afterwards — readers hold the
// pointer. Safe for concurrent use; nil-safe.
func (f *Flight) Record(r *Record) bool {
	if f == nil {
		return false
	}
	if f.slow > 0 && r.LatencyMS >= float64(f.slow)/float64(time.Millisecond) {
		r.Slow = true
	}
	n := f.seen.Add(1)
	if !r.Interesting() && f.sampleEvery > 1 && (n-1)%f.sampleEvery != 0 {
		f.sampledOut.Add(1)
		return false
	}
	r.Seq = f.seq.Add(1)
	slot := &f.slots[(r.Seq-1)%uint64(len(f.slots))]
	for {
		old := slot.Load()
		if old != nil && old.Seq > r.Seq {
			// A writer stalled here long enough for the ring to wrap: the
			// slot already holds a newer record, which must win. The stale
			// record was still kept (it has a Seq) — it is just evicted
			// immediately instead of clobbering newer history.
			return true
		}
		if slot.CompareAndSwap(old, r) {
			return true
		}
	}
}

// FlightStats is a point-in-time snapshot of the recorder's counters.
type FlightStats struct {
	// Seen counts every request offered; Kept those that entered the ring;
	// SampledOut the boring successes dropped by tail sampling.
	Seen       uint64 `json:"seen"`
	Kept       uint64 `json:"kept"`
	SampledOut uint64 `json:"sampled_out"`
	// Size is the ring capacity; SampleEvery the boring-keep rate.
	Size        int     `json:"size"`
	SampleEvery uint64  `json:"sample_every"`
	SlowMS      float64 `json:"slow_ms"`
}

// Stats snapshots the recorder's counters. Nil-safe.
func (f *Flight) Stats() FlightStats {
	if f == nil {
		return FlightStats{}
	}
	return FlightStats{
		Seen:        f.seen.Load(),
		Kept:        f.seq.Load(),
		SampledOut:  f.sampledOut.Load(),
		Size:        len(f.slots),
		SampleEvery: f.sampleEvery,
		SlowMS:      float64(f.slow) / float64(time.Millisecond),
	}
}

// Snapshot returns the kept records, newest first. It reads the ring without
// blocking writers; a record being overwritten concurrently appears as
// either its old or new value, never torn. Nil-safe.
func (f *Flight) Snapshot() []Record {
	if f == nil {
		return nil
	}
	out := make([]Record, 0, len(f.slots))
	for i := range f.slots {
		if r := f.slots[i].Load(); r != nil {
			out = append(out, *r)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Seq > out[b].Seq })
	return out
}

// Find returns the most recent record with the given trace ID still in the
// ring. Nil-safe.
func (f *Flight) Find(traceID string) (Record, bool) {
	var best *Record
	if f == nil {
		return Record{}, false
	}
	for i := range f.slots {
		if r := f.slots[i].Load(); r != nil && r.TraceID == traceID {
			if best == nil || r.Seq > best.Seq {
				best = r
			}
		}
	}
	if best == nil {
		return Record{}, false
	}
	return *best, true
}

// flightListResponse is the JSON body of the list endpoint.
type flightListResponse struct {
	Stats   FlightStats `json:"stats"`
	Records []Record    `json:"records"`
}

// Handler returns the recorder's debug endpoint handler. Mount it at both
// "/debug/requests" (list; query params: n=LIMIT bounds the rows,
// interesting=1 filters to interesting records) and "/debug/requests/"
// (where the rest of the path is a trace ID to look up). Works on a nil
// recorder — requests answer 503 with a JSON error.
func (f *Flight) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if f == nil {
			w.WriteHeader(http.StatusServiceUnavailable)
			_ = json.NewEncoder(w).Encode(map[string]string{"error": "flight recorder disabled"})
			return
		}
		if id := flightPathID(r.URL.Path); id != "" {
			rec, ok := f.Find(id)
			if !ok {
				w.WriteHeader(http.StatusNotFound)
				_ = json.NewEncoder(w).Encode(map[string]string{
					"error": "no record for trace id " + id + " (evicted or never kept)"})
				return
			}
			_ = json.NewEncoder(w).Encode(rec)
			return
		}
		recs := f.Snapshot()
		if r.URL.Query().Get("interesting") == "1" {
			kept := recs[:0]
			for _, rec := range recs {
				if rec.Interesting() {
					kept = append(kept, rec)
				}
			}
			recs = kept
		}
		if s := r.URL.Query().Get("n"); s != "" {
			if n, err := strconv.Atoi(s); err == nil && n >= 0 && n < len(recs) {
				recs = recs[:n]
			}
		}
		if recs == nil {
			recs = []Record{}
		}
		_ = json.NewEncoder(w).Encode(flightListResponse{Stats: f.Stats(), Records: recs})
	})
}

// flightPathID extracts the trace-id path element of a lookup request
// ("/debug/requests/<id>"), or "" for the list route.
func flightPathID(path string) string {
	const prefix = "/debug/requests"
	rest := strings.TrimPrefix(path, prefix)
	rest = strings.Trim(rest, "/")
	return rest
}
