package obsv

import (
	"context"
	"flag"
	"os"
	"os/signal"
	"syscall"
	"time"
)

// SignalContext returns a context cancelled by SIGINT (^C) or SIGTERM, the
// lifecycle wiring every cmd tool shares. Call stop before exiting to
// restore default signal handling.
func SignalContext() (ctx context.Context, stop context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
}

// RunFlags is the wall-clock-budget flag shared by the cmd tools, the
// companion of Flags: every tool registers the same -timeout flag and
// derives its working context through Context, so "bound this run and let
// ^C cancel it" behaves identically across the toolbox.
type RunFlags struct {
	// Timeout bounds the run (or, for tools that apply it per solve, one
	// solve); 0 means unbounded.
	Timeout time.Duration
}

// Register installs the -timeout flag into fs.
func (f *RunFlags) Register(fs *flag.FlagSet) {
	fs.DurationVar(&f.Timeout, "timeout", 0,
		"wall-clock limit (0 = none); ^C also cancels")
}

// Context derives the deadline-bounded context the flag requested: parent
// with a timeout when -timeout is set, parent unchanged otherwise. The
// returned cancel is never nil; call it when the bounded work finishes.
func (f *RunFlags) Context(parent context.Context) (context.Context, context.CancelFunc) {
	if f.Timeout > 0 {
		return context.WithTimeout(parent, f.Timeout)
	}
	return parent, func() {}
}
