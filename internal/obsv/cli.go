package obsv

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
)

// Flags is the observability flag trio shared by the cmd tools: every tool
// registers the same -trace, -metrics and -pprof flags and calls Apply once
// after parsing, so profiling any solver run works identically across the
// toolbox.
type Flags struct {
	// Trace attaches a Trace to the run's context; its summary prints to the
	// diagnostic writer when the cleanup runs.
	Trace bool
	// Metrics names a file to receive a Prometheus text dump of the Default
	// registry at cleanup; "-" selects the tool's stdout.
	Metrics string
	// Pprof is a listen address (use loopback; the profiler has no
	// authentication) for net/http/pprof, expvar and /metrics.
	Pprof string
}

// Register installs the three flags into fs.
func (f *Flags) Register(fs *flag.FlagSet) {
	fs.BoolVar(&f.Trace, "trace", false,
		"record a solve trace and print its summary at exit")
	fs.StringVar(&f.Metrics, "metrics", "",
		`write Prometheus text metrics to this file at exit ("-" = stdout)`)
	fs.StringVar(&f.Pprof, "pprof", "",
		`serve pprof, expvar and /metrics on this loopback address (e.g. "localhost:0")`)
}

// Apply starts whatever the flags requested: it returns a context carrying a
// fresh Trace when -trace is set, and a cleanup function that stops the
// profiling server, writes the -metrics dump and prints the trace summary.
// The cleanup is never nil; run it before exiting.
func (f *Flags) Apply(ctx context.Context, stdout, diag io.Writer) (context.Context, func() error, error) {
	var tr *Trace
	if f.Trace {
		tr = NewTrace()
		ctx = WithTrace(ctx, tr)
	}
	stopServer := func() error { return nil }
	if f.Pprof != "" {
		Default.PublishExpvar("standout_metrics") // /debug/vars includes the registry
		addr, stop, err := StartServer(f.Pprof, Default)
		if err != nil {
			return ctx, func() error { return nil }, err
		}
		stopServer = stop
		fmt.Fprintf(diag, "pprof: serving on http://%s/debug/pprof/ (metrics on /metrics)\n", addr)
	}
	cleanup := func() error {
		err := stopServer()
		if f.Metrics != "" {
			if werr := f.writeMetrics(stdout); werr != nil && err == nil {
				err = werr
			}
		}
		if tr != nil {
			fmt.Fprint(diag, tr.String())
		}
		return err
	}
	return ctx, cleanup, nil
}

func (f *Flags) writeMetrics(stdout io.Writer) error {
	w := stdout
	if f.Metrics != "-" {
		file, err := os.Create(f.Metrics)
		if err != nil {
			return fmt.Errorf("obsv: metrics dump: %w", err)
		}
		defer file.Close()
		w = file
	}
	return Default.WriteProm(w)
}
