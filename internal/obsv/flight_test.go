package obsv

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func okRecord(id string) *Record {
	return &Record{TraceID: id, Route: "/solve", Status: 200, Start: time.Now(), LatencyMS: 0.5}
}

func TestFlightNilIsInert(t *testing.T) {
	var f *Flight
	if f.Record(okRecord("aa")) {
		t.Fatal("nil flight kept a record")
	}
	if got := f.Snapshot(); got != nil {
		t.Fatalf("nil snapshot = %v", got)
	}
	if _, ok := f.Find("aa"); ok {
		t.Fatal("nil flight found a record")
	}
	if s := f.Stats(); s.Seen != 0 || s.Size != 0 {
		t.Fatalf("nil stats = %+v", s)
	}
	if NewFlight(0, time.Second, 1) != nil {
		t.Fatal("NewFlight(0) should be the nil recorder")
	}
	// The disabled recorder still answers its debug endpoint, with a 503.
	rr := httptest.NewRecorder()
	f.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/requests", nil))
	if rr.Code != 503 {
		t.Fatalf("disabled handler status = %d, want 503", rr.Code)
	}
}

func TestFlightRingWrapKeepsNewest(t *testing.T) {
	f := NewFlight(4, 0, 1)
	for i := 0; i < 10; i++ {
		if !f.Record(okRecord(fmt.Sprintf("%032d", i))) {
			t.Fatalf("record %d dropped with sampling off", i)
		}
	}
	recs := f.Snapshot()
	if len(recs) != 4 {
		t.Fatalf("ring holds %d records, want 4", len(recs))
	}
	for i, r := range recs {
		wantSeq := uint64(10 - i)
		if r.Seq != wantSeq {
			t.Fatalf("record %d seq = %d, want %d (newest first)", i, r.Seq, wantSeq)
		}
	}
	if _, ok := f.Find(fmt.Sprintf("%032d", 0)); ok {
		t.Fatal("evicted record still findable")
	}
	if got, ok := f.Find(fmt.Sprintf("%032d", 9)); !ok || got.Seq != 10 {
		t.Fatalf("newest record lookup = (%+v, %v)", got, ok)
	}
}

func TestFlightTailSamplingKeepsInteresting(t *testing.T) {
	f := NewFlight(64, 0, 8) // keep 1-in-8 boring
	interesting := []*Record{
		{TraceID: "e1", Status: 500},
		{TraceID: "e2", Status: 200, Degraded: true},
		{TraceID: "e3", Status: 429, Shed: true},
		{TraceID: "e4", Status: 200, Panic: true},
		{TraceID: "e5", Status: 200, Fault: true},
		{TraceID: "e6", Status: 200, Error: "boom"},
	}
	kept := 0
	for i := 0; i < 26; i++ {
		if f.Record(okRecord(fmt.Sprintf("b%031d", i))) {
			kept++
		}
		if i < len(interesting) {
			if !f.Record(interesting[i]) {
				t.Fatalf("interesting record %d sampled out: %+v", i, interesting[i])
			}
		}
	}
	if kept == 0 || kept >= 26 {
		t.Fatalf("boring keeps = %d of 26, want a 1-in-8 sample", kept)
	}
	st := f.Stats()
	if st.Seen != 32 || st.SampledOut != uint64(26-kept) || st.Kept != uint64(kept+6) {
		t.Fatalf("stats = %+v (boring kept %d)", st, kept)
	}
}

func TestFlightSlowThresholdStamps(t *testing.T) {
	f := NewFlight(8, 10*time.Millisecond, 1000) // sample out almost everything boring
	fast := okRecord("f1")
	fast.LatencyMS = 1
	slow := okRecord("51")
	slow.LatencyMS = 25
	f.Record(fast) // first boring record is the 1-in-N keep
	if !f.Record(slow) {
		t.Fatal("slow record sampled out")
	}
	got, ok := f.Find("51")
	if !ok || !got.Slow {
		t.Fatalf("slow record = (%+v, %v), want Slow=true", got, ok)
	}
	if got, _ := f.Find("f1"); got.Slow {
		t.Fatal("fast record stamped slow")
	}
}

func TestFlightConcurrentRecordAndSnapshot(t *testing.T) {
	f := NewFlight(16, time.Millisecond, 4)
	var writers, reader sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			for i := 0; i < 500; i++ {
				r := okRecord(fmt.Sprintf("%02d%030d", g, i))
				if i%7 == 0 {
					r.Degraded = true
				}
				f.Record(r)
			}
		}(g)
	}
	reader.Add(1)
	go func() {
		defer reader.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, r := range f.Snapshot() {
				if r.TraceID == "" || r.Seq == 0 {
					t.Error("torn record in snapshot")
					return
				}
			}
			f.Find("0100000000000000000000000000000007")
		}
	}()
	writers.Wait()
	close(stop)
	reader.Wait()
	if st := f.Stats(); st.Seen != 2000 {
		t.Fatalf("seen = %d, want 2000", st.Seen)
	}
}

func TestFlightHandlerListAndLookup(t *testing.T) {
	f := NewFlight(8, 0, 1)
	deg := &Record{TraceID: "deadbeefdeadbeefdeadbeefdeadbeef", Route: "/solve", Status: 200,
		Degraded: true, Solver: "greedy", LatencyMS: 3.5,
		Trace: &Summary{Counters: map[string]int64{"batch.tuples": 2}}}
	f.Record(okRecord("00000000000000000000000000000001"))
	f.Record(deg)
	f.Record(okRecord("00000000000000000000000000000002"))
	h := f.Handler()

	get := func(path string) (int, []byte) {
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest("GET", path, nil))
		return rr.Code, rr.Body.Bytes()
	}

	code, body := get("/debug/requests")
	if code != 200 {
		t.Fatalf("list status %d", code)
	}
	var list flightListResponse
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatalf("list body: %v\n%s", err, body)
	}
	if len(list.Records) != 3 || list.Records[0].Seq != 3 {
		t.Fatalf("list = %+v", list.Records)
	}
	if list.Stats.Seen != 3 || list.Stats.Size != 8 {
		t.Fatalf("list stats = %+v", list.Stats)
	}

	code, body = get("/debug/requests?n=1&interesting=1")
	if err := json.Unmarshal(body, &list); err != nil || code != 200 {
		t.Fatalf("filtered list: %d %v", code, err)
	}
	if len(list.Records) != 1 || !list.Records[0].Degraded {
		t.Fatalf("filtered list = %+v", list.Records)
	}

	code, body = get("/debug/requests/deadbeefdeadbeefdeadbeefdeadbeef")
	if code != 200 {
		t.Fatalf("lookup status %d: %s", code, body)
	}
	var rec Record
	if err := json.Unmarshal(body, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Solver != "greedy" || rec.Trace == nil || rec.Trace.Counters["batch.tuples"] != 2 {
		t.Fatalf("lookup record = %+v", rec)
	}

	if code, _ := get("/debug/requests/ffffffffffffffffffffffffffffffff"); code != 404 {
		t.Fatalf("missing lookup status %d, want 404", code)
	}
}
