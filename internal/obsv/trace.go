// Package obsv is the library's observability substrate: per-solve traces
// carried in a context, a process-level metrics registry with expvar and
// Prometheus-text publication, a log/slog structured event sink, and a small
// HTTP server exposing pprof, /metrics and /debug/vars.
//
// Everything is standard library only. The cardinal design rule is that the
// disabled path is free: a solver running under a context with no Trace
// attached must not allocate or take locks on behalf of this package, so the
// collectors can stay compiled into every hot path (the overhead budget is
// documented in DESIGN.md §Observability).
package obsv

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// maxEvents bounds the per-trace timestamped event list so a pathological
// solver (thousands of incumbent updates) cannot balloon a trace; further
// events are dropped and counted in Summary.DroppedEvents.
const maxEvents = 1024

// Trace collects the telemetry of one logical solve (or one batch of
// solves): named counters, phase spans aggregated by name, and timestamped
// events. A nil *Trace is valid and every method on it is a cheap no-op, so
// callers fetch once with FromContext and instrument unconditionally.
//
// A Trace is safe for concurrent use; SolveBatchContext workers share one.
type Trace struct {
	t0 time.Time

	mu       sync.Mutex
	id       TraceID
	counters map[string]int64
	phases   map[string]*phaseAgg
	events   []Event
	dropped  int64
}

type phaseAgg struct {
	count int64
	total time.Duration
}

// NewTrace returns an empty collector; attach it with WithTrace.
func NewTrace() *Trace {
	return &Trace{
		t0:       time.Now(),
		counters: make(map[string]int64),
		phases:   make(map[string]*phaseAgg),
	}
}

// SetTraceID stamps the trace with its request's distributed trace ID, so
// snapshots (and the flight-recorder records embedding them) carry it.
func (t *Trace) SetTraceID(id TraceID) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.id = id
	t.mu.Unlock()
}

// TraceID returns the stamped trace ID (zero when never stamped or nil).
func (t *Trace) TraceID() TraceID {
	if t == nil {
		return TraceID{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.id
}

// traceKey carries the Trace in a context. A zero-size key type keeps
// context.Value lookups allocation-free.
type traceKey struct{}

// WithTrace returns a context carrying t; solvers run under it populate t.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, t)
}

// FromContext returns the Trace attached to ctx, or nil. The nil result is
// directly usable: every Trace method tolerates a nil receiver.
func FromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}

// Count adds delta to the named counter, creating it at zero first. Counters
// are for totals flushed at phase or solve end (nodes expanded, pivots,
// candidates scored), not for per-iteration increments inside hot loops.
func (t *Trace) Count(name string, delta int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.counters[name] += delta
	t.mu.Unlock()
}

// Counter returns the current value of a counter (0 when absent).
func (t *Trace) Counter(name string) int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.counters[name]
}

// Event appends a timestamped (name, value) pair — incumbent updates,
// threshold changes — recorded relative to the trace's creation time.
func (t *Trace) Event(name string, value int64) {
	if t == nil {
		return
	}
	at := time.Since(t.t0)
	t.mu.Lock()
	if len(t.events) >= maxEvents {
		t.dropped++
	} else {
		t.events = append(t.events, Event{Name: name, Value: value, AtSeconds: at.Seconds()})
	}
	t.mu.Unlock()
}

// Span is an in-flight phase measurement returned by StartSpan. It is a
// plain value (no heap allocation); call End exactly once.
type Span struct {
	t     *Trace
	name  string
	start time.Time
}

// StartSpan opens a phase span. Spans with the same name aggregate (count +
// total duration), so per-threshold or per-tuple repetitions of a phase stay
// bounded in the trace. On a nil Trace the zero Span is returned and End is
// free.
func (t *Trace) StartSpan(name string) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, name: name, start: time.Now()}
}

// End closes the span, folding its duration into the trace.
func (s Span) End() {
	if s.t == nil {
		return
	}
	d := time.Since(s.start)
	s.t.mu.Lock()
	agg := s.t.phases[s.name]
	if agg == nil {
		agg = &phaseAgg{}
		s.t.phases[s.name] = agg
	}
	agg.count++
	agg.total += d
	s.t.mu.Unlock()
}

// PhaseStat is one aggregated phase in a Summary.
type PhaseStat struct {
	Name    string  `json:"name"`
	Count   int64   `json:"count"`
	Seconds float64 `json:"seconds"`
}

// Event is one timestamped trace event.
type Event struct {
	Name      string  `json:"name"`
	Value     int64   `json:"value"`
	AtSeconds float64 `json:"at_seconds"`
}

// Summary is an immutable, JSON-marshalable snapshot of a Trace. Phases are
// sorted by descending total time (the reading order of a phase breakdown),
// counters render sorted by name.
type Summary struct {
	// TraceID is the distributed trace ID stamped with SetTraceID (hex, 32
	// chars), or empty for a local/unstamped trace.
	TraceID       string           `json:"trace_id,omitempty"`
	Counters      map[string]int64 `json:"counters,omitempty"`
	Phases        []PhaseStat      `json:"phases,omitempty"`
	Events        []Event          `json:"events,omitempty"`
	DroppedEvents int64            `json:"dropped_events,omitempty"`
}

// Snapshot captures the trace's current state. It is safe to call while the
// trace is still being written (e.g. for live progress dumps).
func (t *Trace) Snapshot() Summary {
	if t == nil {
		return Summary{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s := Summary{DroppedEvents: t.dropped}
	if !t.id.IsZero() {
		s.TraceID = t.id.String()
	}
	if len(t.counters) > 0 {
		s.Counters = make(map[string]int64, len(t.counters))
		for k, v := range t.counters {
			s.Counters[k] = v
		}
	}
	for name, agg := range t.phases {
		s.Phases = append(s.Phases, PhaseStat{Name: name, Count: agg.count, Seconds: agg.total.Seconds()})
	}
	sort.Slice(s.Phases, func(a, b int) bool {
		if s.Phases[a].Seconds != s.Phases[b].Seconds {
			return s.Phases[a].Seconds > s.Phases[b].Seconds
		}
		return s.Phases[a].Name < s.Phases[b].Name
	})
	if len(t.events) > 0 {
		s.Events = append([]Event(nil), t.events...)
	}
	return s
}

// String renders the snapshot as an aligned human-readable block, the format
// the cmd tools print under -trace.
func (t *Trace) String() string { return t.Snapshot().String() }

// String renders the summary; empty summaries render as "(empty trace)".
func (s Summary) String() string {
	var sb strings.Builder
	for _, p := range s.Phases {
		fmt.Fprintf(&sb, "phase %-20s %8d× %12.6fs\n", p.Name, p.Count, p.Seconds)
	}
	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&sb, "count %-20s %8d\n", name, s.Counters[name])
	}
	for _, e := range s.Events {
		fmt.Fprintf(&sb, "event %-20s %8d  @%.6fs\n", e.Name, e.Value, e.AtSeconds)
	}
	if s.DroppedEvents > 0 {
		fmt.Fprintf(&sb, "event (dropped)          %8d\n", s.DroppedEvents)
	}
	if sb.Len() == 0 {
		return "(empty trace)\n"
	}
	return sb.String()
}

// Merge folds other into s: counters add, phases aggregate by name, events
// concatenate (bounded by maxEvents). Used by the bench harness to combine
// the traces of a cell's repeated solves.
func (s *Summary) Merge(other Summary) {
	if len(other.Counters) > 0 && s.Counters == nil {
		s.Counters = make(map[string]int64, len(other.Counters))
	}
	for k, v := range other.Counters {
		s.Counters[k] += v
	}
	byName := make(map[string]int, len(s.Phases))
	for i, p := range s.Phases {
		byName[p.Name] = i
	}
	for _, p := range other.Phases {
		if i, ok := byName[p.Name]; ok {
			s.Phases[i].Count += p.Count
			s.Phases[i].Seconds += p.Seconds
		} else {
			s.Phases = append(s.Phases, p)
		}
	}
	for _, e := range other.Events {
		if len(s.Events) >= maxEvents {
			s.DroppedEvents++
			continue
		}
		s.Events = append(s.Events, e)
	}
	s.DroppedEvents += other.DroppedEvents
}
