package ilp_test

import (
	"fmt"

	"standout/internal/ilp"
	"standout/internal/lp"
)

// ExampleSolve solves a 0/1 knapsack.
func ExampleSolve() {
	p := lp.NewProblem(lp.Maximize)
	a := p.AddBinaryVar(30, "a") // weight 3
	b := p.AddBinaryVar(50, "b") // weight 4
	c := p.AddBinaryVar(60, "c") // weight 5
	p.AddConstraint([]lp.Term{
		{Var: a, Coeff: 3}, {Var: b, Coeff: 4}, {Var: c, Coeff: 5},
	}, lp.LE, 8)

	res, err := ilp.Solve(p, []int{a, b, c}, ilp.Options{ObjIntegral: true})
	if err != nil {
		panic(err)
	}
	fmt.Printf("%v obj=%g take a=%v c=%v\n",
		res.Status, res.Objective, res.X[a] == 1, res.X[c] == 1)
	// Output: optimal obj=90 take a=true c=true
}
