package ilp

import (
	"context"
	"sync"

	"standout/internal/lp"
	"standout/internal/obsv"
)

// speculator runs Options.Workers−1 background goroutines that pre-solve the
// LP relaxations of open branch-and-bound nodes while the coordinator is busy
// with the current node.
//
// Why this parallelization — and not, say, sharing the heap — keeps results
// bit-identical: a node's LP relaxation depends only on its branch chain
// (bounds applied over the base problem), never on when or where it is
// solved, and package lp builds a fresh deterministic simplex per solve. So
// workers may solve any open node at any time on a private clone without
// changing what the coordinator sees. Every observable decision — which node
// is expanded next, pruning, branching variable, incumbent updates, the node
// count — stays on the coordinator, which replays the exact sequential
// trajectory and merely finds some LP answers already waiting. The node
// limit, status and gap reporting are therefore unchanged for any worker
// count; the only things that vary are wall-clock time and the trace's
// lp.solves count (abandoned speculation is real work).
//
// Shared state (heap array, node speculation slots, incumbent score) is
// guarded by mu; workers never mutate the heap or the incumbent.
type speculator struct {
	s    *search
	open *bestFirst

	mu      sync.Mutex
	cond    *sync.Cond
	stopped bool

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	speculated int64 // worker LP solves started (useful or not)
}

// specScan bounds how deep into the heap array workers look for speculation
// targets. The array prefix holds the best-bound nodes — the ones the
// coordinator will pop soonest — so scanning further buys little and costs a
// linear walk under the lock.
const specScan = 64

func newSpeculator(s *search, open *bestFirst) *speculator {
	sp := &speculator{s: s, open: open}
	sp.cond = sync.NewCond(&sp.mu)
	sp.ctx, sp.cancel = context.WithCancel(s.ctx)
	// Clone the problems on the coordinator goroutine, before it starts
	// mutating bounds for node solves — Clone racing SetBounds would be a
	// data race. Only bounds ever change between solves, and every solve
	// rewrites all of them via applyBoundsTo, so clones never go stale.
	workers := s.opts.Workers - 1
	for w := 0; w < workers; w++ {
		prob := s.prob.Clone()
		sp.wg.Add(1)
		go sp.worker(prob)
	}
	return sp
}

// stop retires the workers: in-flight LP solves are interrupted through the
// speculation context (package lp polls it every simplex iteration), so stop
// returns promptly even mid-solve.
func (sp *speculator) stop() {
	sp.mu.Lock()
	sp.stopped = true
	sp.mu.Unlock()
	sp.cancel()
	sp.cond.Broadcast()
	sp.wg.Wait()
	obsv.FromContext(sp.s.ctx).Count("ilp.speculated", sp.speculated)
}

// pickLocked selects an open node worth speculating on: unclaimed and, when
// an incumbent exists, with a bound that can still matter. Called with mu
// held. The scan prefers the front of the heap array — best bounds first.
func (sp *speculator) pickLocked() *node {
	h := *sp.open
	limit := len(h)
	if limit > specScan {
		limit = specScan
	}
	for i := 0; i < limit; i++ {
		nd := h[i]
		if nd.state != lpIdle {
			continue
		}
		if sp.s.hasIncumbent && !sp.s.improves(nd.bound) {
			// The coordinator will prune or terminate before expanding this
			// node; solving its LP would be pure waste. Skipping reads the
			// incumbent under mu and cannot affect results — the coordinator
			// solves inline whatever was not speculated.
			continue
		}
		return nd
	}
	return nil
}

func (sp *speculator) worker(prob *lp.Problem) {
	defer sp.wg.Done()
	for {
		sp.mu.Lock()
		var nd *node
		for {
			if sp.stopped {
				sp.mu.Unlock()
				return
			}
			if nd = sp.pickLocked(); nd != nil {
				break
			}
			sp.cond.Wait()
		}
		nd.state = lpClaimed
		sp.speculated++
		sp.mu.Unlock()

		applyBoundsTo(prob, sp.s.baseLo, sp.s.baseUp, nd)
		res, err := prob.SolveContext(sp.ctx, sp.s.opts.LP)

		sp.mu.Lock()
		nd.res, nd.err, nd.state = res, err, lpDone
		sp.mu.Unlock()
		// The coordinator may be blocked waiting for exactly this node.
		sp.cond.Broadcast()
	}
}
