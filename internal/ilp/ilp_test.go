package ilp

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"standout/internal/lp"
)

func wantStatus(t *testing.T, res Result, st Status) {
	t.Helper()
	if res.Status != st {
		t.Fatalf("status = %v, want %v", res.Status, st)
	}
}

func TestKnapsackSmall(t *testing.T) {
	// max 10a+6b+4c s.t. a+b+c≤2 (0/1) → a+b = 16.
	p := lp.NewProblem(lp.Maximize)
	a := p.AddBinaryVar(10, "a")
	b := p.AddBinaryVar(6, "b")
	c := p.AddBinaryVar(4, "c")
	p.AddConstraint([]lp.Term{{Var: a, Coeff: 1}, {Var: b, Coeff: 1}, {Var: c, Coeff: 1}}, lp.LE, 2)
	res, err := Solve(p, []int{a, b, c}, Options{ObjIntegral: true})
	if err != nil {
		t.Fatal(err)
	}
	wantStatus(t, res, StatusOptimal)
	if math.Abs(res.Objective-16) > 1e-6 {
		t.Fatalf("objective=%v", res.Objective)
	}
	if res.X[a] != 1 || res.X[b] != 1 || res.X[c] != 0 {
		t.Fatalf("x=%v", res.X)
	}
}

func TestKnapsackFractionalRelaxation(t *testing.T) {
	// Classic: weights 3,4,5; values 30,50,60; capacity 8.
	// LP relaxation is fractional; integer optimum picks items 1+2 (weight 7,
	// value 80) vs 2+3 infeasible (9), 1+3 (8, value 90). → 90.
	p := lp.NewProblem(lp.Maximize)
	x1 := p.AddBinaryVar(30, "x1")
	x2 := p.AddBinaryVar(50, "x2")
	x3 := p.AddBinaryVar(60, "x3")
	p.AddConstraint([]lp.Term{{Var: x1, Coeff: 3}, {Var: x2, Coeff: 4}, {Var: x3, Coeff: 5}}, lp.LE, 8)
	res, err := Solve(p, []int{x1, x2, x3}, Options{ObjIntegral: true})
	if err != nil {
		t.Fatal(err)
	}
	wantStatus(t, res, StatusOptimal)
	if math.Abs(res.Objective-90) > 1e-6 {
		t.Fatalf("objective=%v x=%v", res.Objective, res.X)
	}
}

func TestInfeasibleIP(t *testing.T) {
	// 0/1 x,y with x+y ≥ 3: LP infeasible already.
	p := lp.NewProblem(lp.Maximize)
	x := p.AddBinaryVar(1, "x")
	y := p.AddBinaryVar(1, "y")
	p.AddConstraint([]lp.Term{{Var: x, Coeff: 1}, {Var: y, Coeff: 1}}, lp.GE, 3)
	res, err := Solve(p, []int{x, y}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantStatus(t, res, StatusInfeasible)
}

func TestIntegerInfeasibleButLPFeasible(t *testing.T) {
	// 2x = 1 with x ∈ {0,1}: LP feasible at x=0.5, no integer point.
	p := lp.NewProblem(lp.Maximize)
	x := p.AddBinaryVar(1, "x")
	p.AddConstraint([]lp.Term{{Var: x, Coeff: 2}}, lp.EQ, 1)
	res, err := Solve(p, []int{x}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantStatus(t, res, StatusInfeasible)
}

func TestUnboundedRoot(t *testing.T) {
	p := lp.NewProblem(lp.Maximize)
	x := p.AddVar(0, math.Inf(1), 1, "x") // continuous, unbounded
	y := p.AddBinaryVar(1, "y")
	_ = x
	res, err := Solve(p, []int{y}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantStatus(t, res, StatusUnbounded)
}

func TestMinimizeSense(t *testing.T) {
	// min 3x+2y s.t. x+y ≥ 1, x,y ∈ {0,1} → y=1, obj 2.
	p := lp.NewProblem(lp.Minimize)
	x := p.AddBinaryVar(3, "x")
	y := p.AddBinaryVar(2, "y")
	p.AddConstraint([]lp.Term{{Var: x, Coeff: 1}, {Var: y, Coeff: 1}}, lp.GE, 1)
	res, err := Solve(p, []int{x, y}, Options{ObjIntegral: true})
	if err != nil {
		t.Fatal(err)
	}
	wantStatus(t, res, StatusOptimal)
	if math.Abs(res.Objective-2) > 1e-6 || res.X[y] != 1 || res.X[x] != 0 {
		t.Fatalf("objective=%v x=%v", res.Objective, res.X)
	}
}

func TestGeneralIntegerVariables(t *testing.T) {
	// max x+y s.t. 2x+3y ≤ 12, x ≤ 4, integer → e.g. x=4,y=1 → 5.
	p := lp.NewProblem(lp.Maximize)
	x := p.AddVar(0, 4, 1, "x")
	y := p.AddVar(0, math.Inf(1), 1, "y")
	p.AddConstraint([]lp.Term{{Var: x, Coeff: 2}, {Var: y, Coeff: 3}}, lp.LE, 12)
	res, err := Solve(p, []int{x, y}, Options{ObjIntegral: true})
	if err != nil {
		t.Fatal(err)
	}
	wantStatus(t, res, StatusOptimal)
	if math.Abs(res.Objective-5) > 1e-6 {
		t.Fatalf("objective=%v x=%v", res.Objective, res.X)
	}
}

func TestMixedIntegerContinuous(t *testing.T) {
	// max 2x + y, x ∈ {0,1}, 0 ≤ y ≤ 10 continuous, x + y ≤ 1.5
	// → x=1, y=0.5, obj 2.5.
	p := lp.NewProblem(lp.Maximize)
	x := p.AddBinaryVar(2, "x")
	y := p.AddVar(0, 10, 1, "y")
	p.AddConstraint([]lp.Term{{Var: x, Coeff: 1}, {Var: y, Coeff: 1}}, lp.LE, 1.5)
	res, err := Solve(p, []int{x}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantStatus(t, res, StatusOptimal)
	if math.Abs(res.Objective-2.5) > 1e-6 {
		t.Fatalf("objective=%v x=%v", res.Objective, res.X)
	}
}

func TestNodeLimit(t *testing.T) {
	p, ints := randomKnapsack(rand.New(rand.NewSource(3)), 25)
	res, err := Solve(p, ints, Options{MaxNodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusLimit && res.Status != StatusOptimal {
		t.Fatalf("status=%v", res.Status)
	}
	if res.Status == StatusLimit && res.Nodes > 1 {
		t.Fatalf("processed %d nodes with MaxNodes=1", res.Nodes)
	}
}

func TestTimeout(t *testing.T) {
	p, ints := randomKnapsack(rand.New(rand.NewSource(5)), 40)
	res, err := Solve(p, ints, Options{Timeout: time.Nanosecond})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err=%v, want context.DeadlineExceeded", err)
	}
	if res.Status != StatusLimit {
		t.Fatalf("status=%v, want limit", res.Status)
	}
}

func TestCancelledContext(t *testing.T) {
	p, ints := randomKnapsack(rand.New(rand.NewSource(5)), 40)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := SolveContext(ctx, p, ints, Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err=%v, want context.Canceled", err)
	}
	if res.Status != StatusLimit {
		t.Fatalf("status=%v, want limit", res.Status)
	}
}

func TestBadIntVar(t *testing.T) {
	p := lp.NewProblem(lp.Maximize)
	p.AddBinaryVar(1, "x")
	if _, err := Solve(p, []int{5}, Options{}); err == nil {
		t.Fatal("accepted out-of-range integer variable")
	}
}

func TestHeuristicOnlySpeedsUp(t *testing.T) {
	// A heuristic proposing a valid greedy solution must not change the
	// optimum; verify the result matches the run without it.
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		p, ints := randomKnapsack(r, 12)
		plain, err := Solve(p, ints, Options{ObjIntegral: false})
		if err != nil {
			t.Fatal(err)
		}
		withH, err := Solve(p, ints, Options{
			Heuristic: func(x []float64) ([]float64, float64, bool) {
				sol := make([]float64, len(x))
				obj := 0.0
				for j := range x {
					if x[j] > 0.99 {
						sol[j] = 1
						obj += p.ObjCoeff(j)
					}
				}
				// Rounding down keeps the knapsack constraint satisfied.
				return sol, obj, true
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(plain.Objective-withH.Objective) > 1e-6 {
			t.Fatalf("trial %d: heuristic changed optimum %v → %v",
				trial, plain.Objective, withH.Objective)
		}
	}
}

// randomKnapsack builds a 0/1 knapsack with n items.
func randomKnapsack(r *rand.Rand, n int) (*lp.Problem, []int) {
	p := lp.NewProblem(lp.Maximize)
	terms := make([]lp.Term, n)
	ints := make([]int, n)
	total := 0.0
	for j := 0; j < n; j++ {
		v := p.AddBinaryVar(1+float64(r.Intn(20)), "")
		w := 1 + float64(r.Intn(10))
		terms[j] = lp.Term{Var: v, Coeff: w}
		ints[j] = v
		total += w
	}
	p.AddConstraint(terms, lp.LE, total/3)
	return p, ints
}

// knapsackBrute solves a knapsack by exhaustive enumeration for comparison.
func knapsackBrute(p *lp.Problem, weights []float64, cap float64) float64 {
	n := p.NumVars()
	best := 0.0
	for mask := 0; mask < 1<<n; mask++ {
		w, v := 0.0, 0.0
		for j := 0; j < n; j++ {
			if mask&(1<<j) != 0 {
				w += weights[j]
				v += p.ObjCoeff(j)
			}
		}
		if w <= cap && v > best {
			best = v
		}
	}
	return best
}

func TestRandomKnapsackVsBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		n := 3 + r.Intn(10)
		p := lp.NewProblem(lp.Maximize)
		weights := make([]float64, n)
		terms := make([]lp.Term, n)
		ints := make([]int, n)
		total := 0.0
		for j := 0; j < n; j++ {
			v := p.AddBinaryVar(float64(1+r.Intn(30)), "")
			weights[j] = float64(1 + r.Intn(12))
			terms[j] = lp.Term{Var: v, Coeff: weights[j]}
			ints[j] = v
			total += weights[j]
		}
		cap := total * (0.2 + 0.6*r.Float64())
		p.AddConstraint(terms, lp.LE, cap)
		res, err := Solve(p, ints, Options{ObjIntegral: true})
		if err != nil {
			t.Fatal(err)
		}
		wantStatus(t, res, StatusOptimal)
		want := knapsackBrute(p, weights, cap)
		if math.Abs(res.Objective-want) > 1e-6 {
			t.Fatalf("trial %d: got %v, brute force %v", trial, res.Objective, want)
		}
	}
}

// TestRandomCoverVsBruteForce uses ≥ rows (set cover), exercising Phase 1
// inside branch-and-bound nodes.
func TestRandomCoverVsBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(4242))
	for trial := 0; trial < 40; trial++ {
		nSets := 3 + r.Intn(7)
		nElems := 2 + r.Intn(5)
		membership := make([][]bool, nSets)
		p := lp.NewProblem(lp.Minimize)
		ints := make([]int, nSets)
		for sIdx := 0; sIdx < nSets; sIdx++ {
			membership[sIdx] = make([]bool, nElems)
			for e := 0; e < nElems; e++ {
				membership[sIdx][e] = r.Intn(2) == 0
			}
			ints[sIdx] = p.AddBinaryVar(float64(1+r.Intn(5)), "")
		}
		feasible := true
		for e := 0; e < nElems; e++ {
			var terms []lp.Term
			for sIdx := 0; sIdx < nSets; sIdx++ {
				if membership[sIdx][e] {
					terms = append(terms, lp.Term{Var: sIdx, Coeff: 1})
				}
			}
			if len(terms) == 0 {
				feasible = false
				break
			}
			p.AddConstraint(terms, lp.GE, 1)
		}
		if !feasible {
			continue
		}
		res, err := Solve(p, ints, Options{ObjIntegral: true})
		if err != nil {
			t.Fatal(err)
		}
		wantStatus(t, res, StatusOptimal)

		// Brute force.
		best := math.Inf(1)
		for mask := 0; mask < 1<<nSets; mask++ {
			cost := 0.0
			covered := make([]bool, nElems)
			for sIdx := 0; sIdx < nSets; sIdx++ {
				if mask&(1<<sIdx) != 0 {
					cost += p.ObjCoeff(sIdx)
					for e, in := range membership[sIdx] {
						if in {
							covered[e] = true
						}
					}
				}
			}
			ok := true
			for _, c := range covered {
				ok = ok && c
			}
			if ok && cost < best {
				best = cost
			}
		}
		if math.Abs(res.Objective-best) > 1e-6 {
			t.Fatalf("trial %d: got %v, brute force %v", trial, res.Objective, best)
		}
	}
}

func TestStatusString(t *testing.T) {
	for s, want := range map[Status]string{
		StatusOptimal: "optimal", StatusInfeasible: "infeasible",
		StatusUnbounded: "unbounded", StatusLimit: "limit", Status(9): "Status(9)",
	} {
		if s.String() != want {
			t.Errorf("Status(%d).String()=%q", int(s), s.String())
		}
	}
}
