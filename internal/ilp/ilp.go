// Package ilp solves mixed 0/1 integer linear programs by LP-relaxation
// branch-and-bound over the simplex solver in package lp. It is the engine of
// the paper's ILP-SOC-CB-QL algorithm (§IV.B); the paper used the
// off-the-shelf lpsolve library, which is replaced here by a from-scratch
// pure-Go implementation of the same algorithmic family (branch and bound).
//
// The solver performs best-first search on LP bounds, prunes with an
// incumbent maintained by optional problem-specific rounding heuristics, and
// branches on the most fractional integer variable.
package ilp

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"standout/internal/lp"
	"standout/internal/obsv"
)

// Status reports the outcome of a branch-and-bound run.
type Status int

const (
	// StatusOptimal means the incumbent is provably optimal.
	StatusOptimal Status = iota
	// StatusInfeasible means no integer-feasible point exists.
	StatusInfeasible
	// StatusUnbounded means the root relaxation is unbounded.
	StatusUnbounded
	// StatusLimit means a node/time limit stopped the search; Result carries
	// the best incumbent found and the remaining optimality gap.
	StatusLimit
)

func (s Status) String() string {
	switch s {
	case StatusOptimal:
		return "optimal"
	case StatusInfeasible:
		return "infeasible"
	case StatusUnbounded:
		return "unbounded"
	case StatusLimit:
		return "limit"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Result is the outcome of Solve.
type Result struct {
	Status    Status
	Objective float64   // incumbent objective in the problem's sense
	X         []float64 // incumbent solution; valid when Status is Optimal or
	// when Status is Limit and HasIncumbent is true
	HasIncumbent bool
	Nodes        int     // branch-and-bound nodes processed
	Gap          float64 // |best bound − incumbent| at termination (0 if optimal)
}

// Heuristic derives an integer-feasible solution from a fractional LP
// solution. It returns the candidate solution, its objective value in the
// problem's sense, and whether a candidate was produced. The solver only uses
// it to improve the incumbent (pruning), so a heuristic can only speed the
// search up, never change the optimum.
type Heuristic func(x []float64) (sol []float64, obj float64, ok bool)

// Options tunes the branch-and-bound search. The zero value uses defaults.
type Options struct {
	// MaxNodes bounds the number of nodes processed; 0 means 1<<20.
	MaxNodes int
	// Timeout stops the search after the given wall-clock duration; 0 means
	// no limit. It is implemented as a context deadline layered over the
	// caller's context: on expiry SolveContext returns the incumbent found so
	// far with StatusLimit together with an error satisfying
	// errors.Is(err, context.DeadlineExceeded).
	Timeout time.Duration
	// IntTol is the integrality tolerance; 0 means 1e-6.
	IntTol float64
	// ObjIntegral asserts that every integer-feasible point has an integral
	// objective value, enabling the stronger bound floor(LP) during pruning.
	ObjIntegral bool
	// Heuristic, if non-nil, is invoked on every fractional node solution.
	Heuristic Heuristic
	// LP tunes the underlying simplex solves.
	LP lp.Options
	// Workers parallelizes the search with Workers−1 speculative LP solvers
	// (≤ 1, the zero value, searches sequentially). The coordinator replays
	// the exact sequential best-first trajectory — every heap decision,
	// incumbent update and node count is unchanged — while the extra workers
	// pre-solve the LP relaxations of open nodes on private problem clones.
	// A node's relaxation depends only on its branch chain, never on when it
	// is solved, so the Result is bit-identical to the sequential one for
	// any worker count (DESIGN.md §11); only wall-clock time changes.
	Workers int
}

// ErrBadIntVar is returned when an integer variable index is out of range.
var ErrBadIntVar = errors.New("ilp: integer variable index out of range")

type node struct {
	parent *node
	branch int     // variable fixed by this node (-1 at root)
	lo, up float64 // bound override for branch
	bound  float64 // parent LP score (internal maximization form)
	depth  int

	// Speculation slot, guarded by the speculator mutex (untouched on
	// sequential runs): a worker claims an open node, solves its LP
	// relaxation on a private clone and parks the outcome here for the
	// coordinator to consume when — if ever — the node is expanded.
	state lpState
	res   lp.Result
	err   error
}

// lpState is the lifecycle of a node's speculative LP solve.
type lpState int32

const (
	lpIdle    lpState = iota // no one is solving this node's relaxation
	lpClaimed                // a worker (or the coordinator) is solving it
	lpDone                   // res/err hold the outcome
)

// bestFirst is a max-heap of open nodes keyed on bound.
type bestFirst []*node

func (h bestFirst) Len() int            { return len(h) }
func (h bestFirst) Less(i, j int) bool  { return h[i].bound > h[j].bound }
func (h bestFirst) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *bestFirst) Push(x interface{}) { *h = append(*h, x.(*node)) }
func (h *bestFirst) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}

// Solve finds an optimal integer assignment to the variables listed in
// intVars (all other variables remain continuous). The problem is cloned
// internally; base is not modified.
func Solve(base *lp.Problem, intVars []int, opts Options) (Result, error) {
	return SolveContext(context.Background(), base, intVars, opts)
}

// SolveContext is Solve under a context. The branch-and-bound loop polls ctx
// before every node and the underlying LP solves poll it inside their own hot
// loops, so cancellation latency is bounded by a fraction of one simplex
// iteration, not by a whole node.
//
// When ctx is cancelled or its deadline (or Options.Timeout, layered on top)
// expires, SolveContext stops promptly and returns BOTH a Result carrying the
// best incumbent found so far (Status == StatusLimit, HasIncumbent reporting
// whether X is usable) AND a non-nil error satisfying errors.Is against
// context.Canceled or context.DeadlineExceeded. Callers that can use a
// partial answer inspect the Result; callers that cannot just propagate the
// error.
func SolveContext(ctx context.Context, base *lp.Problem, intVars []int, opts Options) (Result, error) {
	for _, v := range intVars {
		if v < 0 || v >= base.NumVars() {
			return Result{}, fmt.Errorf("%w: %d of %d", ErrBadIntVar, v, base.NumVars())
		}
	}
	if opts.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.Timeout)
		defer cancel()
	}
	s := &search{
		ctx:     ctx,
		prob:    base.Clone(),
		intVars: append([]int(nil), intVars...),
		opts:    opts,
	}
	if s.opts.MaxNodes == 0 {
		s.opts.MaxNodes = 1 << 20
	}
	if s.opts.IntTol == 0 {
		s.opts.IntTol = 1e-6
	}
	s.maximize = base.Sense() == lp.Maximize
	// Remember the base bounds so each node can be applied from scratch.
	n := s.prob.NumVars()
	s.baseLo = make([]float64, n)
	s.baseUp = make([]float64, n)
	for j := 0; j < n; j++ {
		s.baseLo[j], s.baseUp[j] = s.prob.Bounds(j)
	}
	return s.run()
}

type search struct {
	ctx      context.Context
	prob     *lp.Problem
	intVars  []int
	opts     Options
	maximize bool
	tr       *obsv.Trace // context trace, nil when absent

	baseLo, baseUp []float64

	incumbent    []float64
	incScore     float64 // internal maximization form
	hasIncumbent bool
	nodes        int
	pruned       int // subtrees cut by bound or LP infeasibility

	spec *speculator // nil on sequential runs
}

// lockSpec/unlockSpec guard state shared with speculative workers — the open
// heap, node speculation slots, the incumbent score. They are no-ops on
// sequential runs, keeping the default path free of synchronization.
func (s *search) lockSpec() {
	if s.spec != nil {
		s.spec.mu.Lock()
	}
}

func (s *search) unlockSpec() {
	if s.spec != nil {
		s.spec.mu.Unlock()
	}
}

// score converts an objective in the problem's sense to internal
// always-maximize form.
func (s *search) score(obj float64) float64 {
	if s.maximize {
		return obj
	}
	return -obj
}

// unscore converts back.
func (s *search) unscore(score float64) float64 {
	if s.maximize {
		return score
	}
	return -score
}

func (s *search) run() (Result, error) {
	open := &bestFirst{{branch: -1, bound: math.Inf(1)}}
	s.incScore = math.Inf(-1)
	s.tr = obsv.FromContext(s.ctx)
	if s.tr != nil {
		defer func() {
			s.tr.Count("ilp.nodes_expanded", int64(s.nodes))
			s.tr.Count("ilp.nodes_pruned", int64(s.pruned))
		}()
	}

	finish := func(st Status, bestBound float64) Result {
		res := Result{Status: st, Nodes: s.nodes, HasIncumbent: s.hasIncumbent}
		if s.hasIncumbent {
			res.Objective = s.unscore(s.incScore)
			res.X = s.incumbent
			if st == StatusLimit {
				res.Gap = math.Max(0, bestBound-s.incScore)
			}
		} else if st == StatusLimit {
			res.Gap = math.Inf(1)
		}
		return res
	}

	if s.opts.Workers > 1 {
		s.spec = newSpeculator(s, open)
		defer s.spec.stop()
	}

	for {
		s.lockSpec()
		if open.Len() == 0 {
			s.unlockSpec()
			break
		}
		// Best-first: the top node carries the global best bound.
		top := (*open)[0]
		s.unlockSpec()
		if s.hasIncumbent && !s.improves(top.bound) {
			return finish(StatusOptimal, top.bound), nil
		}
		if err := s.ctx.Err(); err != nil {
			return finish(StatusLimit, top.bound), fmt.Errorf("ilp: %w", err)
		}
		if s.nodes >= s.opts.MaxNodes {
			return finish(StatusLimit, top.bound), nil
		}
		s.lockSpec()
		heap.Pop(open)
		s.unlockSpec()
		s.nodes++

		res, err := s.solveNode(top)
		if err != nil {
			if cerr := s.ctx.Err(); cerr != nil {
				// The LP was interrupted mid-solve; surface the incumbent with
				// the context error, like the per-node check above.
				return finish(StatusLimit, top.bound), fmt.Errorf("ilp: %w", cerr)
			}
			return Result{}, err
		}
		switch res.Status {
		case lp.StatusInfeasible:
			s.pruned++
			continue
		case lp.StatusUnbounded:
			if top.branch == -1 {
				return Result{Status: StatusUnbounded, Nodes: s.nodes}, nil
			}
			continue
		case lp.StatusIterLimit:
			return Result{}, fmt.Errorf("ilp: LP iteration limit hit at node %d", s.nodes)
		}
		nodeScore := s.score(res.Objective)
		if s.hasIncumbent && !s.improves(nodeScore) {
			s.pruned++
			continue
		}

		frac := s.mostFractional(res.X)
		if frac < 0 {
			// Integer feasible: snap and record.
			sol := append([]float64(nil), res.X...)
			for _, v := range s.intVars {
				sol[v] = math.Round(sol[v])
			}
			s.offerIncumbent(sol, nodeScore)
			continue
		}
		if s.opts.Heuristic != nil {
			if sol, obj, ok := s.opts.Heuristic(res.X); ok {
				s.offerIncumbent(append([]float64(nil), sol...), s.score(obj))
			}
		}

		x := res.X[frac]
		down := &node{parent: top, branch: frac, lo: s.baseBoundsLo(frac), up: math.Floor(x),
			bound: nodeScore, depth: top.depth + 1}
		upn := &node{parent: top, branch: frac, lo: math.Ceil(x), up: s.baseBoundsUp(frac),
			bound: nodeScore, depth: top.depth + 1}
		s.lockSpec()
		heap.Push(open, down)
		heap.Push(open, upn)
		s.unlockSpec()
		if s.spec != nil {
			s.spec.cond.Broadcast() // fresh speculation targets
		}
	}

	if s.hasIncumbent {
		return finish(StatusOptimal, s.incScore), nil
	}
	return Result{Status: StatusInfeasible, Nodes: s.nodes}, nil
}

// improves reports whether a bound/score can still beat the incumbent,
// using integral rounding of the bound when the objective is integral.
func (s *search) improves(bound float64) bool {
	if s.opts.ObjIntegral {
		bound = math.Floor(bound + 1e-6)
	}
	return bound > s.incScore+1e-9
}

func (s *search) offerIncumbent(sol []float64, score float64) {
	if !s.hasIncumbent || score > s.incScore+1e-9 {
		// The coordinator is the only writer; the lock publishes the score to
		// speculative workers, which read it to skip doomed speculation.
		s.lockSpec()
		s.incumbent = sol
		s.incScore = score
		s.hasIncumbent = true
		s.unlockSpec()
		s.tr.Event("ilp.incumbent", int64(math.Round(s.unscore(score))))
	}
}

// solveNode produces the node's LP relaxation result: from the speculation
// slot when a worker already solved (or is solving) it, inline on the
// coordinator's problem otherwise. Either way the outcome is the same — the
// relaxation is a pure function of the node's branch chain — so speculation
// is invisible in everything but latency.
func (s *search) solveNode(nd *node) (lp.Result, error) {
	if s.spec == nil {
		applyBoundsTo(s.prob, s.baseLo, s.baseUp, nd)
		return s.prob.SolveContext(s.ctx, s.opts.LP)
	}
	sp := s.spec
	sp.mu.Lock()
	for nd.state == lpClaimed {
		sp.cond.Wait() // a worker is mid-solve; its publish wakes us
	}
	if nd.state == lpDone {
		res, err := nd.res, nd.err
		sp.mu.Unlock()
		return res, err
	}
	nd.state = lpClaimed // bar workers from duplicating the inline solve
	sp.mu.Unlock()
	applyBoundsTo(s.prob, s.baseLo, s.baseUp, nd)
	res, err := s.prob.SolveContext(s.ctx, s.opts.LP)
	sp.mu.Lock()
	nd.res, nd.err, nd.state = res, err, lpDone
	sp.mu.Unlock()
	return res, err
}

// applyBounds resets the problem bounds to base and applies the node chain.
func (s *search) applyBounds(n *node) {
	applyBoundsTo(s.prob, s.baseLo, s.baseUp, n)
}

// applyBoundsTo resets prob's bounds to base and applies the node chain;
// shared by the coordinator and the speculative workers' private clones.
func applyBoundsTo(prob *lp.Problem, baseLo, baseUp []float64, n *node) {
	for j := range baseLo {
		prob.SetBounds(j, baseLo[j], baseUp[j])
	}
	for cur := n; cur != nil && cur.branch >= 0; cur = cur.parent {
		lo, up := prob.Bounds(cur.branch)
		// Intersect: deeper overrides tighten, ancestors must not loosen.
		prob.SetBounds(cur.branch, math.Max(lo, cur.lo), math.Min(up, cur.up))
	}
}

func (s *search) baseBoundsLo(v int) float64 { return s.baseLo[v] }
func (s *search) baseBoundsUp(v int) float64 { return s.baseUp[v] }

// mostFractional returns the integer variable farthest from integrality, or
// -1 when the point is integer feasible.
func (s *search) mostFractional(x []float64) int {
	best, bestDist := -1, s.opts.IntTol
	for _, v := range s.intVars {
		f := x[v] - math.Floor(x[v])
		dist := math.Min(f, 1-f)
		if dist > bestDist {
			best, bestDist = v, dist
		}
	}
	return best
}
