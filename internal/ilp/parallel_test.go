package ilp

import (
	"context"
	"math/rand"
	"reflect"
	"testing"
)

// TestParallelBitIdentical is the package-level determinism proof for
// speculative parallel branch-and-bound: for every worker count the full
// Result — status, objective, incumbent vector, node count, gap — must equal
// the sequential one exactly. Solve clones the base problem, so one problem
// serves every run.
func TestParallelBitIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	instances := 40
	if testing.Short() {
		instances = 8
	}
	for i := 0; i < instances; i++ {
		p, ints := randomKnapsack(r, 8+r.Intn(6))
		opts := Options{ObjIntegral: i%2 == 0}
		seq, seqErr := Solve(p, ints, opts)
		if seqErr != nil {
			t.Fatalf("instance %d: sequential: %v", i, seqErr)
		}
		for _, w := range []int{2, 4, 8} {
			opts.Workers = w
			got, err := Solve(p, ints, opts)
			if err != nil {
				t.Fatalf("instance %d workers=%d: %v", i, w, err)
			}
			if !reflect.DeepEqual(got, seq) {
				t.Fatalf("instance %d workers=%d: result diverged\nseq: %+v\npar: %+v", i, w, got, seq)
			}
		}
	}
}

// TestParallelNodeLimitIdentical checks that the node limit cuts the parallel
// search at exactly the same trajectory point as the sequential one — the
// strongest evidence that speculation does not perturb the search order.
func TestParallelNodeLimitIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	p, ints := randomKnapsack(r, 14)
	for _, limit := range []int{1, 3, 7, 20} {
		seq, seqErr := Solve(p, ints, Options{MaxNodes: limit, ObjIntegral: true})
		par, parErr := Solve(p, ints, Options{MaxNodes: limit, ObjIntegral: true, Workers: 4})
		if (seqErr == nil) != (parErr == nil) {
			t.Fatalf("limit %d: error mismatch: seq=%v par=%v", limit, seqErr, parErr)
		}
		if !reflect.DeepEqual(par, seq) {
			t.Fatalf("limit %d: result diverged\nseq: %+v\npar: %+v", limit, seq, par)
		}
	}
}

// TestParallelCancellation verifies a cancelled parallel solve returns the
// context error and leaves no workers behind (the race detector and
// goroutine-leak-sensitive -count runs would catch a stuck speculator).
func TestParallelCancellation(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	p, ints := randomKnapsack(r, 16)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := SolveContext(ctx, p, ints, Options{Workers: 4})
	if err == nil {
		t.Fatalf("want context error, got result %+v", res)
	}
	if res.Status != StatusLimit {
		t.Fatalf("status = %v, want %v", res.Status, StatusLimit)
	}
}

// TestParallelHeuristicIdentical exercises the incumbent-publication path:
// heuristics update the incumbent mid-search, which workers observe for
// speculation pruning; the result must still match sequentially.
func TestParallelHeuristicIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(19))
	p, ints := randomKnapsack(r, 12)
	// Round down: keep only variables the LP already set to (essentially) 1.
	// The LP point satisfies the knapsack constraint and zeroing fractional
	// variables only sheds weight, so the candidate is always feasible.
	h := func(x []float64) ([]float64, float64, bool) {
		sol := make([]float64, len(x))
		obj := 0.0
		for j := range x {
			if x[j] > 0.999 {
				sol[j] = 1
				obj += p.ObjCoeff(j)
			}
		}
		return sol, obj, true
	}
	seq, seqErr := Solve(p, ints, Options{Heuristic: h, ObjIntegral: true})
	par, parErr := Solve(p, ints, Options{Heuristic: h, ObjIntegral: true, Workers: 4})
	if (seqErr == nil) != (parErr == nil) {
		t.Fatalf("error mismatch: seq=%v par=%v", seqErr, parErr)
	}
	if !reflect.DeepEqual(par, seq) {
		t.Fatalf("result diverged\nseq: %+v\npar: %+v", seq, par)
	}
}

func TestParallelWorkersOneIsSequential(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	p, ints := randomKnapsack(r, 10)
	a, errA := Solve(p, ints, Options{Workers: 1})
	b, errB := Solve(p, ints, Options{})
	if errA != nil || errB != nil {
		t.Fatalf("errors: %v %v", errA, errB)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("Workers=1 diverged from zero value:\n%+v\n%+v", a, b)
	}
}
