package lp_test

import (
	"fmt"
	"math"

	"standout/internal/lp"
)

// ExampleProblem_Solve solves a small production-planning LP.
func ExampleProblem_Solve() {
	p := lp.NewProblem(lp.Maximize)
	x := p.AddVar(0, math.Inf(1), 5, "x")
	y := p.AddVar(0, math.Inf(1), 4, "y")
	p.AddConstraint([]lp.Term{{Var: x, Coeff: 6}, {Var: y, Coeff: 4}}, lp.LE, 24)
	p.AddConstraint([]lp.Term{{Var: x, Coeff: 1}, {Var: y, Coeff: 2}}, lp.LE, 6)

	res, err := p.Solve(lp.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("%v obj=%g x=%.1f y=%.1f\n", res.Status, res.Objective, res.X[x], res.X[y])
	// Output: optimal obj=21 x=3.0 y=1.5
}

// ExampleProblem_Solve_duals shows dual values for sensitivity analysis.
func ExampleProblem_Solve_duals() {
	p := lp.NewProblem(lp.Maximize)
	x := p.AddVar(0, math.Inf(1), 3, "x")
	y := p.AddVar(0, math.Inf(1), 2, "y")
	tight := p.AddConstraint([]lp.Term{{Var: x, Coeff: 1}, {Var: y, Coeff: 1}}, lp.LE, 4)
	slackRow := p.AddConstraint([]lp.Term{{Var: x, Coeff: 1}, {Var: y, Coeff: 3}}, lp.LE, 6)

	res, _ := p.Solve(lp.Options{})
	fmt.Printf("dual(tight)=%.0f dual(slack)=%.0f\n",
		res.Duals[tight], math.Abs(res.Duals[slackRow]))
	// Output: dual(tight)=3 dual(slack)=0
}
