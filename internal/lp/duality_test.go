package lp

import (
	"math"
	"math/rand"
	"testing"
)

func TestDualsKnownLP(t *testing.T) {
	// max 3x+2y s.t. x+y≤4, x+3y≤6 → (4,0) with only the first row tight.
	// Dual: y1=3, y2=0; rc_x=0, rc_y=2−3=−1.
	p := NewProblem(Maximize)
	x := p.AddVar(0, math.Inf(1), 3, "x")
	y := p.AddVar(0, math.Inf(1), 2, "y")
	p.AddConstraint([]Term{{x, 1}, {y, 1}}, LE, 4)
	p.AddConstraint([]Term{{x, 1}, {y, 3}}, LE, 6)
	res := solveOK(t, p)
	wantOptimal(t, res, 12)
	if math.Abs(res.Duals[0]-3) > eps || math.Abs(res.Duals[1]) > eps {
		t.Errorf("duals=%v, want [3 0]", res.Duals)
	}
	if math.Abs(res.ReducedCosts[x]) > eps || math.Abs(res.ReducedCosts[y]+1) > eps {
		t.Errorf("reduced costs=%v, want [0 -1]", res.ReducedCosts)
	}
}

func TestDualsMinimizeWithGE(t *testing.T) {
	// min 2x+3y s.t. x+y ≥ 10, x ≤ 4 (bound) → x=4, y=6, obj 26.
	// The ≥ row is tight with dual 3 (cost of the marginal unit via y);
	// strong duality: 26 = 3·10 + rc_x·4 (rc_x = 2−3 = −1 → 30 − 4 = 26).
	p := NewProblem(Minimize)
	x := p.AddVar(0, 4, 2, "x")
	y := p.AddVar(0, math.Inf(1), 3, "y")
	p.AddConstraint([]Term{{x, 1}, {y, 1}}, GE, 10)
	res := solveOK(t, p)
	wantOptimal(t, res, 26)
	if math.Abs(res.Duals[0]-3) > eps {
		t.Errorf("dual=%v, want 3", res.Duals[0])
	}
	sum := res.Duals[0]*10 + res.ReducedCosts[x]*res.X[x] + res.ReducedCosts[y]*res.X[y]
	if math.Abs(sum-res.Objective) > eps {
		t.Errorf("strong duality: %v vs objective %v", sum, res.Objective)
	}
}

func TestDualSignsMaximizeLE(t *testing.T) {
	// For a maximization with ≤ rows, duals must be non-negative.
	r := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(5)
		m := 1 + r.Intn(5)
		p := NewProblem(Maximize)
		for j := 0; j < n; j++ {
			p.AddVar(0, 5, r.Float64()*4, "")
		}
		for i := 0; i < m; i++ {
			var terms []Term
			for j := 0; j < n; j++ {
				terms = append(terms, Term{j, r.Float64() * 2})
			}
			p.AddConstraint(terms, LE, 1+r.Float64()*6)
		}
		res := solveOK(t, p)
		if res.Status != StatusOptimal {
			t.Fatalf("trial %d: %v", trial, res.Status)
		}
		for i, d := range res.Duals {
			if d < -1e-7 {
				t.Fatalf("trial %d: dual[%d]=%v negative for ≤ row in max problem", trial, i, d)
			}
		}
	}
}

// TestStrongDualityRandom verifies Objective = Σ y·b + Σ rc·x on random
// feasible problems mixing senses, operators and variable bounds.
func TestStrongDualityRandom(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for trial := 0; trial < 300; trial++ {
		n := 1 + r.Intn(6)
		m := 1 + r.Intn(5)
		sense := Maximize
		if r.Intn(2) == 0 {
			sense = Minimize
		}
		p := NewProblem(sense)
		feas := make([]float64, n)
		for j := 0; j < n; j++ {
			feas[j] = r.Float64() * 3
			p.AddVar(0, 3+r.Float64()*3, r.Float64()*6-3, "")
		}
		rhs := make([]float64, m)
		for i := 0; i < m; i++ {
			var terms []Term
			lhs := 0.0
			for j := 0; j < n; j++ {
				c := r.Float64()*4 - 2
				terms = append(terms, Term{j, c})
				lhs += c * feas[j]
			}
			switch r.Intn(3) {
			case 0:
				rhs[i] = lhs
				p.AddConstraint(terms, EQ, lhs)
			case 1:
				rhs[i] = lhs + r.Float64()
				p.AddConstraint(terms, LE, rhs[i])
			default:
				rhs[i] = lhs - r.Float64()
				p.AddConstraint(terms, GE, rhs[i])
			}
		}
		res, err := p.Solve(Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Status != StatusOptimal {
			t.Fatalf("trial %d: status %v on feasible bounded instance", trial, res.Status)
		}
		sum := 0.0
		for i := range rhs {
			sum += res.Duals[i] * rhs[i]
		}
		for j := 0; j < n; j++ {
			sum += res.ReducedCosts[j] * res.X[j]
		}
		if math.Abs(sum-res.Objective) > 1e-5 {
			t.Fatalf("trial %d: duality gap %v (obj %v, dual side %v)",
				trial, sum-res.Objective, res.Objective, sum)
		}
		// Basic variables must carry zero reduced cost.
		for j := 0; j < n; j++ {
			lo, up := p.Bounds(j)
			interior := res.X[j] > lo+1e-6 && res.X[j] < up-1e-6
			if interior && math.Abs(res.ReducedCosts[j]) > 1e-5 {
				t.Fatalf("trial %d: interior variable %d has reduced cost %v",
					trial, j, res.ReducedCosts[j])
			}
		}
	}
}
