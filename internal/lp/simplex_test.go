package lp

import (
	"math"
	"math/rand"
	"testing"
)

const eps = 1e-6

func solveOK(t *testing.T, p *Problem) Result {
	t.Helper()
	res, err := p.Solve(Options{})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return res
}

func wantOptimal(t *testing.T, res Result, obj float64) {
	t.Helper()
	if res.Status != StatusOptimal {
		t.Fatalf("status = %v, want optimal", res.Status)
	}
	if math.Abs(res.Objective-obj) > eps {
		t.Fatalf("objective = %v, want %v (x=%v)", res.Objective, obj, res.X)
	}
}

func TestSimpleMax(t *testing.T) {
	// max 3x+2y s.t. x+y≤4, x+3y≤6, x,y ≥ 0 → (4,0), obj 12.
	p := NewProblem(Maximize)
	x := p.AddVar(0, math.Inf(1), 3, "x")
	y := p.AddVar(0, math.Inf(1), 2, "y")
	p.AddConstraint([]Term{{x, 1}, {y, 1}}, LE, 4)
	p.AddConstraint([]Term{{x, 1}, {y, 3}}, LE, 6)
	res := solveOK(t, p)
	wantOptimal(t, res, 12)
	if math.Abs(res.X[x]-4) > eps || math.Abs(res.X[y]) > eps {
		t.Errorf("x=%v", res.X)
	}
}

func TestTwoConstraintMax(t *testing.T) {
	// max 5x+4y s.t. 6x+4y≤24, x+2y≤6 → (3, 1.5), obj 21.
	p := NewProblem(Maximize)
	x := p.AddVar(0, math.Inf(1), 5, "x")
	y := p.AddVar(0, math.Inf(1), 4, "y")
	p.AddConstraint([]Term{{x, 6}, {y, 4}}, LE, 24)
	p.AddConstraint([]Term{{x, 1}, {y, 2}}, LE, 6)
	res := solveOK(t, p)
	wantOptimal(t, res, 21)
	if math.Abs(res.X[x]-3) > eps || math.Abs(res.X[y]-1.5) > eps {
		t.Errorf("x=%v", res.X)
	}
}

func TestInfeasible(t *testing.T) {
	p := NewProblem(Maximize)
	x := p.AddVar(0, math.Inf(1), 1, "x")
	p.AddConstraint([]Term{{x, 1}}, GE, 2)
	p.AddConstraint([]Term{{x, 1}}, LE, 1)
	res := solveOK(t, p)
	if res.Status != StatusInfeasible {
		t.Fatalf("status = %v, want infeasible", res.Status)
	}
}

func TestInfeasibleBoundsVsConstraint(t *testing.T) {
	p := NewProblem(Minimize)
	x := p.AddVar(0, 1, 1, "x")
	y := p.AddVar(0, 1, 1, "y")
	p.AddConstraint([]Term{{x, 1}, {y, 1}}, GE, 3) // impossible with x,y ≤ 1
	res := solveOK(t, p)
	if res.Status != StatusInfeasible {
		t.Fatalf("status = %v, want infeasible", res.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := NewProblem(Maximize)
	p.AddVar(0, math.Inf(1), 1, "x")
	res := solveOK(t, p)
	if res.Status != StatusUnbounded {
		t.Fatalf("status = %v, want unbounded", res.Status)
	}
}

func TestUnboundedWithConstraint(t *testing.T) {
	// max x - y s.t. x - y ≤ ... nothing binds x−... use x ≥ y only.
	p := NewProblem(Maximize)
	x := p.AddVar(0, math.Inf(1), 1, "x")
	y := p.AddVar(0, math.Inf(1), 0, "y")
	p.AddConstraint([]Term{{x, 1}, {y, -1}}, GE, 0)
	res := solveOK(t, p)
	if res.Status != StatusUnbounded {
		t.Fatalf("status = %v, want unbounded", res.Status)
	}
}

func TestEquality(t *testing.T) {
	// max x+2y s.t. x+y=3, x ≤ 2, x,y≥0 → (0,3)? obj x+2y maximized with y big:
	// y=3,x=0 → 6.
	p := NewProblem(Maximize)
	x := p.AddVar(0, 2, 1, "x")
	y := p.AddVar(0, math.Inf(1), 2, "y")
	p.AddConstraint([]Term{{x, 1}, {y, 1}}, EQ, 3)
	res := solveOK(t, p)
	wantOptimal(t, res, 6)
	if math.Abs(res.X[x]) > eps || math.Abs(res.X[y]-3) > eps {
		t.Errorf("x=%v", res.X)
	}
}

func TestMinimizeWithGE(t *testing.T) {
	// min 2x+3y s.t. x+y ≥ 10, x ≤ 4 → x=4, y=6, obj 26.
	p := NewProblem(Minimize)
	x := p.AddVar(0, 4, 2, "x")
	y := p.AddVar(0, math.Inf(1), 3, "y")
	p.AddConstraint([]Term{{x, 1}, {y, 1}}, GE, 10)
	res := solveOK(t, p)
	wantOptimal(t, res, 26)
	if math.Abs(res.X[x]-4) > eps || math.Abs(res.X[y]-6) > eps {
		t.Errorf("x=%v", res.X)
	}
}

func TestPureBoundFlip(t *testing.T) {
	// max x with 0 ≤ x ≤ 5 and no constraints: solved by a single bound flip.
	p := NewProblem(Maximize)
	x := p.AddVar(0, 5, 1, "x")
	res := solveOK(t, p)
	wantOptimal(t, res, 5)
	if res.X[x] != 5 {
		t.Errorf("x=%v", res.X)
	}
}

func TestFreeVariable(t *testing.T) {
	// min y s.t. y ≥ x, y ≥ −x, x free → 0 at x=0.
	p := NewProblem(Minimize)
	x := p.AddVar(math.Inf(-1), math.Inf(1), 0, "x")
	y := p.AddVar(math.Inf(-1), math.Inf(1), 1, "y")
	p.AddConstraint([]Term{{y, 1}, {x, -1}}, GE, 0)
	p.AddConstraint([]Term{{y, 1}, {x, 1}}, GE, 0)
	res := solveOK(t, p)
	wantOptimal(t, res, 0)
}

func TestFreeVariableNegativeOptimum(t *testing.T) {
	// min x s.t. x ≥ −7, x free → −7.
	p := NewProblem(Minimize)
	x := p.AddVar(math.Inf(-1), math.Inf(1), 1, "x")
	p.AddConstraint([]Term{{x, 1}}, GE, -7)
	res := solveOK(t, p)
	wantOptimal(t, res, -7)
	if math.Abs(res.X[x]+7) > eps {
		t.Errorf("x=%v", res.X)
	}
}

func TestNegativeLowerBounds(t *testing.T) {
	// max x+y, −2 ≤ x ≤ −1, y ≤ 3, x+y ≤ 1 → x=−1, y=2 → 1.
	p := NewProblem(Maximize)
	x := p.AddVar(-2, -1, 1, "x")
	y := p.AddVar(0, 3, 1, "y")
	p.AddConstraint([]Term{{x, 1}, {y, 1}}, LE, 1)
	res := solveOK(t, p)
	wantOptimal(t, res, 1)
}

func TestBealeDegenerate(t *testing.T) {
	// Beale's classic cycling example; optimum 0.05.
	p := NewProblem(Maximize)
	x1 := p.AddVar(0, math.Inf(1), 0.75, "x1")
	x2 := p.AddVar(0, math.Inf(1), -150, "x2")
	x3 := p.AddVar(0, math.Inf(1), 0.02, "x3")
	x4 := p.AddVar(0, math.Inf(1), -6, "x4")
	p.AddConstraint([]Term{{x1, 0.25}, {x2, -60}, {x3, -0.04}, {x4, 9}}, LE, 0)
	p.AddConstraint([]Term{{x1, 0.5}, {x2, -90}, {x3, -0.02}, {x4, 3}}, LE, 0)
	p.AddConstraint([]Term{{x3, 1}}, LE, 1)
	res := solveOK(t, p)
	wantOptimal(t, res, 0.05)
}

func TestEqualitySystemExactlyDetermined(t *testing.T) {
	// x+y=2, x−y=0 → x=y=1 regardless of objective.
	p := NewProblem(Maximize)
	x := p.AddVar(math.Inf(-1), math.Inf(1), 1, "x")
	y := p.AddVar(math.Inf(-1), math.Inf(1), 0, "y")
	p.AddConstraint([]Term{{x, 1}, {y, 1}}, EQ, 2)
	p.AddConstraint([]Term{{x, 1}, {y, -1}}, EQ, 0)
	res := solveOK(t, p)
	wantOptimal(t, res, 1)
	if math.Abs(res.X[x]-1) > eps || math.Abs(res.X[y]-1) > eps {
		t.Errorf("x=%v", res.X)
	}
}

func TestRedundantConstraints(t *testing.T) {
	p := NewProblem(Maximize)
	x := p.AddVar(0, math.Inf(1), 1, "x")
	for i := 0; i < 5; i++ {
		p.AddConstraint([]Term{{x, 1}}, LE, 7)
	}
	p.AddConstraint([]Term{{x, 2}}, LE, 14)
	res := solveOK(t, p)
	wantOptimal(t, res, 7)
}

func TestZeroObjectiveFeasibility(t *testing.T) {
	// Pure feasibility question with equality needing Phase 1.
	p := NewProblem(Maximize)
	x := p.AddVar(0, 10, 0, "x")
	y := p.AddVar(0, 10, 0, "y")
	p.AddConstraint([]Term{{x, 1}, {y, 2}}, EQ, 7)
	res := solveOK(t, p)
	if res.Status != StatusOptimal {
		t.Fatalf("status=%v", res.Status)
	}
	if math.Abs(res.X[x]+2*res.X[y]-7) > eps {
		t.Errorf("constraint violated: %v", res.X)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name  string
		build func() *Problem
	}{
		{"inverted bounds", func() *Problem {
			p := NewProblem(Maximize)
			p.AddVar(2, 1, 0, "x")
			return p
		}},
		{"nan objective", func() *Problem {
			p := NewProblem(Maximize)
			p.AddVar(0, 1, math.NaN(), "x")
			return p
		}},
		{"bad var index", func() *Problem {
			p := NewProblem(Maximize)
			p.AddVar(0, 1, 1, "x")
			p.AddConstraint([]Term{{5, 1}}, LE, 1)
			return p
		}},
		{"inf rhs", func() *Problem {
			p := NewProblem(Maximize)
			x := p.AddVar(0, 1, 1, "x")
			p.AddConstraint([]Term{{x, 1}}, LE, math.Inf(1))
			return p
		}},
		{"inf coeff", func() *Problem {
			p := NewProblem(Maximize)
			x := p.AddVar(0, 1, 1, "x")
			p.AddConstraint([]Term{{x, math.Inf(1)}}, LE, 1)
			return p
		}},
		{"inf objective coeff", func() *Problem {
			p := NewProblem(Maximize)
			p.AddVar(0, 1, math.Inf(1), "x")
			return p
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := tc.build().Solve(Options{}); err == nil {
				t.Error("Solve accepted invalid problem")
			}
		})
	}
}

func TestCloneIndependence(t *testing.T) {
	p := NewProblem(Maximize)
	x := p.AddVar(0, 1, 1, "x")
	p.AddConstraint([]Term{{x, 1}}, LE, 1)
	q := p.Clone()
	q.SetBounds(x, 0, 0)
	res := solveOK(t, p)
	wantOptimal(t, res, 1)
	resQ := solveOK(t, q)
	wantOptimal(t, resQ, 0)
}

func TestIterLimit(t *testing.T) {
	p := NewProblem(Maximize)
	n := 20
	vars := make([]int, n)
	for i := range vars {
		vars[i] = p.AddVar(0, math.Inf(1), float64(i+1), "")
	}
	for i := 0; i < n; i++ {
		terms := make([]Term, 0, n)
		for j := 0; j <= i; j++ {
			terms = append(terms, Term{vars[j], 1})
		}
		p.AddConstraint(terms, LE, float64(i+1))
	}
	res, err := p.Solve(Options{MaxIters: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusIterLimit && res.Status != StatusOptimal {
		t.Fatalf("status=%v", res.Status)
	}
}

// TestRandomFeasibleBounded generates random LPs that are feasible by
// construction and checks the solution is feasible, within bounds, achieves
// the reported objective, and is at least as good as sampled feasible points.
func TestRandomFeasibleBounded(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 1 + r.Intn(6)
		m := 1 + r.Intn(6)
		p := NewProblem(Maximize)
		for j := 0; j < n; j++ {
			p.AddVar(0, 1+r.Float64()*4, r.Float64()*10-5, "")
		}
		type row struct {
			terms []Term
			rhs   float64
		}
		rows := make([]row, m)
		for i := 0; i < m; i++ {
			var terms []Term
			for j := 0; j < n; j++ {
				if r.Intn(2) == 0 {
					terms = append(terms, Term{j, r.Float64() * 3})
				}
			}
			rhs := r.Float64() * 5
			p.AddConstraint(terms, LE, rhs)
			rows[i] = row{terms, rhs}
		}
		res, err := p.Solve(Options{})
		if err != nil {
			t.Fatal(err)
		}
		// x=0 is feasible (all coefficients ≥ 0, rhs ≥ 0, lo=0).
		if res.Status != StatusOptimal {
			t.Fatalf("trial %d: status=%v", trial, res.Status)
		}
		obj := 0.0
		for j := 0; j < n; j++ {
			lo, up := p.Bounds(j)
			if res.X[j] < lo-eps || res.X[j] > up+eps {
				t.Fatalf("trial %d: x[%d]=%v outside [%v,%v]", trial, j, res.X[j], lo, up)
			}
			obj += p.obj[j] * res.X[j]
		}
		if math.Abs(obj-res.Objective) > 1e-5 {
			t.Fatalf("trial %d: objective mismatch %v vs %v", trial, obj, res.Objective)
		}
		for i, rw := range rows {
			lhs := 0.0
			for _, tm := range rw.terms {
				lhs += tm.Coeff * res.X[tm.Var]
			}
			if lhs > rw.rhs+1e-5 {
				t.Fatalf("trial %d: constraint %d violated: %v > %v", trial, i, lhs, rw.rhs)
			}
		}
		// Optimality spot-check against random feasible points.
		for probe := 0; probe < 30; probe++ {
			x := make([]float64, n)
			for j := range x {
				_, up := p.Bounds(j)
				x[j] = r.Float64() * up
			}
			// Scale into feasibility.
			scale := 1.0
			for _, rw := range rows {
				lhs := 0.0
				for _, tm := range rw.terms {
					lhs += tm.Coeff * x[tm.Var]
				}
				if lhs > rw.rhs && lhs > 0 {
					scale = math.Min(scale, rw.rhs/lhs)
				}
			}
			probeObj := 0.0
			for j := range x {
				probeObj += p.obj[j] * x[j] * scale
			}
			if probeObj > res.Objective+1e-5 {
				t.Fatalf("trial %d: sampled point beats optimum: %v > %v",
					trial, probeObj, res.Objective)
			}
		}
	}
}

// TestRandomWithEqualities exercises Phase 1 on random instances where a
// known feasible point is planted, so infeasible results are always bugs.
func TestRandomWithEqualities(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 2 + r.Intn(5)
		m := 1 + r.Intn(4)
		feas := make([]float64, n)
		p := NewProblem(Maximize)
		for j := 0; j < n; j++ {
			feas[j] = r.Float64() * 3
			p.AddVar(0, 5, r.Float64()*4-2, "")
		}
		for i := 0; i < m; i++ {
			var terms []Term
			lhs := 0.0
			for j := 0; j < n; j++ {
				c := r.Float64()*4 - 2
				terms = append(terms, Term{j, c})
				lhs += c * feas[j]
			}
			switch r.Intn(3) {
			case 0:
				p.AddConstraint(terms, EQ, lhs)
			case 1:
				p.AddConstraint(terms, LE, lhs+r.Float64())
			default:
				p.AddConstraint(terms, GE, lhs-r.Float64())
			}
		}
		res, err := p.Solve(Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Status != StatusOptimal {
			t.Fatalf("trial %d: status=%v for a feasible instance", trial, res.Status)
		}
	}
}

func TestStatusAndOpStrings(t *testing.T) {
	for s, want := range map[Status]string{
		StatusOptimal: "optimal", StatusInfeasible: "infeasible",
		StatusUnbounded: "unbounded", StatusIterLimit: "iteration limit",
		Status(9): "Status(9)",
	} {
		if s.String() != want {
			t.Errorf("Status(%d).String()=%q", int(s), s.String())
		}
	}
	for o, want := range map[Op]string{LE: "<=", GE: ">=", EQ: "=", Op(9): "Op(9)"} {
		if o.String() != want {
			t.Errorf("Op(%d).String()=%q", int(o), o.String())
		}
	}
}
