package lp

import (
	"context"
	"math"
)

// varState tracks where a variable currently sits.
type varState int8

const (
	atLower  varState = iota // nonbasic at its lower bound
	atUpper                  // nonbasic at its upper bound
	freeZero                 // nonbasic free variable, parked at 0
	basic
)

// simplex is a dense bounded-variable two-phase tableau simplex.
//
// Internal variable layout: [0,n) structural, [n, n+m) slacks (one per row,
// +1 coefficient, bounds [0,∞) for ≤ rows and [0,0] for = rows; ≥ rows are
// negated into ≤ rows during load), [n+m, ...) artificials added for rows
// whose initial slack value violates its bounds.
type simplex struct {
	m, n   int // rows, structural vars
	nTotal int // all columns currently in the tableau

	tab   [][]float64 // m × nTotal: B⁻¹A for every column
	rc    []float64   // reduced costs per column (current phase)
	cost  []float64   // phase-2 costs per column (maximization form)
	lo    []float64
	up    []float64
	val   []float64 // current value of every variable
	state []varState
	basis []int // column occupying each row

	sense   Sense
	rowSign []float64 // +1, or −1 for rows loaded negated (≥ constraints)
	tol     float64
	maxIter int
	iters   int
	bland   bool
	nArt    int

	// ctx is polled during the tableau build (per row batch) and once per
	// simplex iteration; interrupted records that a poll fired, after which
	// the tableau state is unusable and SolveContext reports ctx.Err().
	ctx         context.Context
	interrupted bool
}

func newSimplex(ctx context.Context, p *Problem, opts Options) *simplex {
	m := len(p.cons)
	n := p.NumVars()
	s := &simplex{m: m, n: n, sense: p.sense, ctx: ctx}
	s.tol = opts.Tol
	if s.tol == 0 {
		s.tol = 1e-9
	}
	s.maxIter = opts.MaxIters
	if s.maxIter == 0 {
		s.maxIter = 50*(m+n) + 2000
	}
	s.load(p)
	return s
}

// poll checks for cancellation, latching interrupted. Large programs spend
// seconds in a single tableau build or pivot, so the hot loops poll at a
// granularity that keeps cancellation latency well under any deadline a
// caller would plausibly set.
func (s *simplex) poll() bool {
	if s.interrupted {
		return true
	}
	select {
	case <-s.ctx.Done():
		s.interrupted = true
		return true
	default:
		return false
	}
}

// load builds the initial tableau, basis and variable assignment.
func (s *simplex) load(p *Problem) {
	m, n := s.m, s.n
	nTotal := n + m // artificials appended later as needed
	s.nTotal = nTotal

	s.lo = make([]float64, nTotal, nTotal+m)
	s.up = make([]float64, nTotal, nTotal+m)
	s.cost = make([]float64, nTotal, nTotal+m)
	s.val = make([]float64, nTotal, nTotal+m)
	s.state = make([]varState, nTotal, nTotal+m)
	s.basis = make([]int, m)

	// Structural variables: objective in maximization form, park at a bound.
	objSign := 1.0
	if p.sense == Minimize {
		objSign = -1
	}
	for j := 0; j < n; j++ {
		s.lo[j], s.up[j] = p.lo[j], p.up[j]
		s.cost[j] = objSign * p.obj[j]
		switch {
		case !math.IsInf(s.lo[j], -1):
			s.state[j] = atLower
			s.val[j] = s.lo[j]
		case !math.IsInf(s.up[j], 1):
			s.state[j] = atUpper
			s.val[j] = s.up[j]
		default:
			s.state[j] = freeZero
			s.val[j] = 0
		}
	}

	// Rows: normalize ≥ to ≤ by negation; slacks get [0,∞), equalities [0,0].
	s.tab = make([][]float64, m)
	s.rowSign = make([]float64, m)
	rhs := make([]float64, m)
	for i, c := range p.cons {
		if i&63 == 0 && s.poll() {
			return // partial tableau; solve() refuses to run
		}
		row := make([]float64, nTotal, nTotal+m)
		sign := 1.0
		if c.Op == GE {
			sign = -1
		}
		s.rowSign[i] = sign
		for _, t := range c.Terms {
			row[t.Var] += sign * t.Coeff
		}
		rhs[i] = sign * c.RHS
		slack := n + i
		row[slack] = 1
		s.lo[slack] = 0
		if c.Op == EQ {
			s.up[slack] = 0
		} else {
			s.up[slack] = math.Inf(1)
		}
		s.tab[i] = row
		s.basis[i] = slack
		s.state[slack] = basic
	}

	// Initial basic values: slack_i = rhs_i − Σ A_ij · val_j.
	for i := 0; i < m; i++ {
		if i&63 == 0 && s.poll() {
			return
		}
		v := rhs[i]
		for j := 0; j < n; j++ {
			if s.tab[i][j] != 0 && s.val[j] != 0 {
				v -= s.tab[i][j] * s.val[j]
			}
		}
		s.val[s.basis[i]] = v
	}

	// Repair infeasible rows with artificials.
	for i := 0; i < m; i++ {
		slack := s.basis[i]
		v := s.val[slack]
		var beta float64
		switch {
		case v < s.lo[slack]-s.tol:
			beta = s.lo[slack]
		case v > s.up[slack]+s.tol:
			beta = s.up[slack]
		default:
			continue
		}
		residual := v - beta // amount the artificial must absorb
		sigma := 1.0
		if residual < 0 {
			sigma = -1
		}
		// Row currently reads: Σ A z + slack = rhs. Re-park the slack at beta
		// and give the row to a fresh artificial column σ·e_i.
		s.state[slack] = atLower
		if beta == s.up[slack] && s.up[slack] != s.lo[slack] {
			s.state[slack] = atUpper
		}
		s.val[slack] = beta

		art := s.addColumn()
		s.tab[i][art] = sigma
		s.lo[art], s.up[art] = 0, math.Inf(1)
		s.val[art] = math.Abs(residual)
		s.state[art] = basic
		s.basis[i] = art
		s.nArt++
		if sigma < 0 {
			// Keep tab = B⁻¹A with the identity on basic columns.
			for j := range s.tab[i] {
				s.tab[i][j] = -s.tab[i][j]
			}
		}
	}
}

// addColumn appends a zero column to every row and the parallel arrays,
// returning its index.
func (s *simplex) addColumn() int {
	j := s.nTotal
	s.nTotal++
	for i := range s.tab {
		s.tab[i] = append(s.tab[i], 0)
	}
	s.lo = append(s.lo, 0)
	s.up = append(s.up, 0)
	s.cost = append(s.cost, 0)
	s.val = append(s.val, 0)
	s.state = append(s.state, atLower)
	return j
}

// recomputeRC rebuilds the reduced-cost row for the given cost vector:
// rc_j = c_j − c_Bᵀ · tab[:,j].
func (s *simplex) recomputeRC(cost []float64) {
	s.rc = make([]float64, s.nTotal)
	copy(s.rc, cost)
	for i := 0; i < s.m; i++ {
		cb := cost[s.basis[i]]
		if cb == 0 {
			continue
		}
		row := s.tab[i]
		for j := 0; j < s.nTotal; j++ {
			if row[j] != 0 {
				s.rc[j] -= cb * row[j]
			}
		}
	}
}

func (s *simplex) solve() Result {
	if s.interrupted {
		return Result{}
	}
	// Phase 1: drive artificials to zero.
	if s.nArt > 0 {
		phase1 := make([]float64, s.nTotal)
		for j := s.n + s.m; j < s.nTotal; j++ {
			phase1[j] = -1
		}
		s.recomputeRC(phase1)
		st := s.iterate()
		if st == StatusIterLimit {
			return Result{Status: StatusIterLimit, Iters: s.iters}
		}
		infeas := 0.0
		for j := s.n + s.m; j < s.nTotal; j++ {
			infeas += s.val[j]
		}
		if infeas > 1e-7 {
			return Result{Status: StatusInfeasible, Iters: s.iters}
		}
		// Fix artificials at zero for Phase 2 (basic ones stay at value 0 and
		// degenerate pivots move them out if they ever block progress).
		for j := s.n + s.m; j < s.nTotal; j++ {
			s.up[j] = 0
			s.val[j] = 0
		}
	}

	// Phase 2: optimize the real objective.
	s.bland = false
	s.recomputeRC(s.cost)
	st := s.iterate()
	if st != StatusOptimal {
		return Result{Status: st, Iters: s.iters}
	}

	obj := 0.0
	x := make([]float64, s.n)
	for j := 0; j < s.n; j++ {
		x[j] = s.val[j]
		obj += s.cost[j] * s.val[j]
	}
	objSign := 1.0
	if s.sense == Minimize {
		obj = -obj
		objSign = -1
	}

	// Duals and reduced costs in the problem's own sense. In the internal
	// maximization form, the dual of loaded row i is −rc[slack_i]; rows
	// loaded negated (≥) flip back, and Minimize flips the whole identity.
	duals := make([]float64, s.m)
	for i := 0; i < s.m; i++ {
		duals[i] = objSign * s.rowSign[i] * -s.rc[s.n+i]
	}
	rcs := make([]float64, s.n)
	for j := 0; j < s.n; j++ {
		rcs[j] = objSign * s.rc[j]
	}
	return Result{
		Status: StatusOptimal, Objective: obj, X: x, Iters: s.iters,
		Duals: duals, ReducedCosts: rcs,
	}
}

// iterate runs primal simplex iterations until optimality, unboundedness or
// the iteration limit. It returns StatusOptimal when no entering column
// improves the current phase objective.
func (s *simplex) iterate() Status {
	blandAfter := 10*(s.m+s.n) + 500
	startIters := s.iters
	for {
		if s.poll() {
			// Report iteration-limit internally; SolveContext rewrites this
			// into the context error once solve() unwinds.
			return StatusIterLimit
		}
		if s.iters-startIters > blandAfter {
			s.bland = true
		}
		if s.iters >= s.maxIter {
			return StatusIterLimit
		}
		enter, dir := s.chooseEntering()
		if enter < 0 {
			return StatusOptimal
		}
		s.iters++
		if st := s.step(enter, dir); st != StatusOptimal {
			return st
		}
	}
}

// chooseEntering picks a nonbasic column whose movement improves the
// objective, together with the movement direction (+1 increase from the
// current value, −1 decrease). Returns -1 when none exists.
func (s *simplex) chooseEntering() (int, float64) {
	bestJ, bestDir, bestScore := -1, 0.0, s.tol
	for j := 0; j < s.nTotal; j++ {
		var dir float64
		switch s.state[j] {
		case basic:
			continue
		case atLower:
			if s.lo[j] == s.up[j] {
				continue // fixed variable
			}
			if s.rc[j] > s.tol {
				dir = 1
			}
		case atUpper:
			if s.lo[j] == s.up[j] {
				continue
			}
			if s.rc[j] < -s.tol {
				dir = -1
			}
		case freeZero:
			if s.rc[j] > s.tol {
				dir = 1
			} else if s.rc[j] < -s.tol {
				dir = -1
			}
		}
		if dir == 0 {
			continue
		}
		if s.bland {
			return j, dir // first eligible index (Bland's rule)
		}
		if score := math.Abs(s.rc[j]); score > bestScore {
			bestJ, bestDir, bestScore = j, dir, score
		}
	}
	return bestJ, bestDir
}

// step performs the ratio test for the entering column and applies either a
// bound flip or a pivot.
func (s *simplex) step(enter int, dir float64) Status {
	// Maximum movement allowed by the entering variable's own bounds.
	limit := math.Inf(1)
	if !math.IsInf(s.lo[enter], -1) && !math.IsInf(s.up[enter], 1) {
		limit = s.up[enter] - s.lo[enter]
	}

	leaveRow := -1
	leaveAt := atLower
	pivotMag := 0.0
	for i := 0; i < s.m; i++ {
		a := s.tab[i][enter]
		if a == 0 {
			continue
		}
		b := s.basis[i]
		rate := -dir * a // d(val[b]) per unit increase of movement
		var room float64
		var target varState
		switch {
		case rate < -s.tol:
			if math.IsInf(s.lo[b], -1) {
				continue
			}
			room = (s.val[b] - s.lo[b]) / -rate
			target = atLower
		case rate > s.tol:
			if math.IsInf(s.up[b], 1) {
				continue
			}
			room = (s.up[b] - s.val[b]) / rate
			target = atUpper
		default:
			continue
		}
		if room < 0 {
			room = 0 // numerical slip below a bound: degenerate step
		}
		take := false
		switch {
		case room < limit-s.tol:
			take = true // strictly tighter than anything seen
		case room <= limit+s.tol && leaveRow >= 0:
			// Tie among rows: Bland's rule takes the smallest basis index
			// (anti-cycling), otherwise prefer the larger pivot magnitude.
			if s.bland {
				take = b < s.basis[leaveRow]
			} else {
				take = math.Abs(a) > pivotMag
			}
		case room <= limit+s.tol && leaveRow < 0:
			// Ties with the entering variable's own bound range: pivoting is
			// as valid as flipping; take the row so Bland's rule stays sound.
			take = true
		}
		if take {
			limit = math.Min(room, limit)
			leaveRow, leaveAt, pivotMag = i, target, math.Abs(a)
		}
	}

	if math.IsInf(limit, 1) {
		return StatusUnbounded
	}

	// Move every basic variable by its rate times the step.
	if limit != 0 {
		for i := 0; i < s.m; i++ {
			if a := s.tab[i][enter]; a != 0 {
				s.val[s.basis[i]] -= dir * a * limit
			}
		}
	}

	if leaveRow < 0 {
		// Bound flip: the entering variable traverses to its opposite bound.
		if dir > 0 {
			s.val[enter] = s.up[enter]
			s.state[enter] = atUpper
		} else {
			s.val[enter] = s.lo[enter]
			s.state[enter] = atLower
		}
		return StatusOptimal
	}

	// Pivot: entering becomes basic, the blocking variable leaves at a bound.
	leaving := s.basis[leaveRow]
	if leaveAt == atLower {
		s.val[leaving] = s.lo[leaving]
	} else {
		s.val[leaving] = s.up[leaving]
	}
	s.state[leaving] = leaveAt
	if s.lo[leaving] == s.up[leaving] {
		s.state[leaving] = atLower
	}
	s.val[enter] += dir * limit
	s.state[enter] = basic
	s.basis[leaveRow] = enter

	s.pivot(leaveRow, enter)
	return StatusOptimal
}

// pivot performs Gauss-Jordan elimination on the tableau and reduced costs so
// that column enter becomes the identity on row r.
func (s *simplex) pivot(r, enter int) {
	row := s.tab[r]
	piv := row[enter]
	inv := 1 / piv
	for j := range row {
		row[j] *= inv
	}
	row[enter] = 1 // exact
	for i := 0; i < s.m; i++ {
		if i == r {
			continue
		}
		f := s.tab[i][enter]
		if f == 0 {
			continue
		}
		ti := s.tab[i]
		for j := range ti {
			ti[j] -= f * row[j]
		}
		ti[enter] = 0 // exact
	}
	f := s.rc[enter]
	if f != 0 {
		for j := range s.rc {
			s.rc[j] -= f * row[j]
		}
		s.rc[enter] = 0
	}
}
