// Package lp implements a dense, bounded-variable, two-phase primal simplex
// solver for linear programs. It is the substrate under the paper's
// ILP-SOC-CB-QL algorithm (§IV.B): the branch-and-bound integer solver in
// package ilp repeatedly solves LP relaxations produced here.
//
// The solver handles problems of the form
//
//	maximize (or minimize)  cᵀx
//	subject to              aᵢᵀx  {≤,=,≥}  bᵢ   for each constraint i
//	                        loⱼ ≤ xⱼ ≤ upⱼ      for each variable j
//
// with any mix of finite and infinite bounds. Variables may be free
// (lo=-Inf, up=+Inf). Internally all constraints are normalized to
// equalities with slack variables; an initial basis of slacks is repaired
// with artificial variables in a Phase-1 run when necessary.
package lp

import (
	"context"
	"errors"
	"fmt"
	"math"

	"standout/internal/obsv"
)

// Sense selects the optimization direction.
type Sense int

const (
	// Maximize the objective.
	Maximize Sense = iota
	// Minimize the objective.
	Minimize
)

// Op is a constraint comparison operator.
type Op int

const (
	// LE is aᵀx ≤ b.
	LE Op = iota
	// GE is aᵀx ≥ b.
	GE
	// EQ is aᵀx = b.
	EQ
)

func (o Op) String() string {
	switch o {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// Term is one coefficient of a constraint row.
type Term struct {
	Var   int
	Coeff float64
}

// Constraint is a sparse row aᵀx op b.
type Constraint struct {
	Terms []Term
	Op    Op
	RHS   float64
}

// Problem is a mutable LP under construction. The zero value is not usable;
// call NewProblem.
type Problem struct {
	sense Sense
	obj   []float64
	lo    []float64
	up    []float64
	names []string
	cons  []Constraint
}

// NewProblem returns an empty problem with the given optimization sense.
func NewProblem(sense Sense) *Problem {
	return &Problem{sense: sense}
}

// AddVar appends a variable with bounds [lo, up] and objective coefficient
// obj, returning its index. Use math.Inf for unbounded sides. name is used in
// error messages and may be empty.
func (p *Problem) AddVar(lo, up, obj float64, name string) int {
	p.lo = append(p.lo, lo)
	p.up = append(p.up, up)
	p.obj = append(p.obj, obj)
	p.names = append(p.names, name)
	return len(p.obj) - 1
}

// AddBinaryVar appends a [0,1] variable, returning its index.
func (p *Problem) AddBinaryVar(obj float64, name string) int {
	return p.AddVar(0, 1, obj, name)
}

// NumVars returns the number of variables added so far.
func (p *Problem) NumVars() int { return len(p.obj) }

// Sense returns the optimization direction.
func (p *Problem) Sense() Sense { return p.sense }

// ObjCoeff returns the objective coefficient of variable v.
func (p *Problem) ObjCoeff(v int) float64 { return p.obj[v] }

// NumConstraints returns the number of constraint rows.
func (p *Problem) NumConstraints() int { return len(p.cons) }

// SetBounds replaces the bounds of variable v. The branch-and-bound solver
// uses this to fix integer variables along branches.
func (p *Problem) SetBounds(v int, lo, up float64) {
	p.lo[v] = lo
	p.up[v] = up
}

// Bounds returns the bounds of variable v.
func (p *Problem) Bounds(v int) (lo, up float64) { return p.lo[v], p.up[v] }

// VarName returns the name of variable v (may be empty).
func (p *Problem) VarName(v int) string { return p.names[v] }

// AddConstraint appends the row aᵀx op b and returns its index.
func (p *Problem) AddConstraint(terms []Term, op Op, rhs float64) int {
	p.cons = append(p.cons, Constraint{Terms: append([]Term(nil), terms...), Op: op, RHS: rhs})
	return len(p.cons) - 1
}

// Validate checks the problem for structural errors: out-of-range variable
// indices, NaN coefficients, and inverted bounds.
func (p *Problem) Validate() error {
	n := p.NumVars()
	for j := 0; j < n; j++ {
		if p.lo[j] > p.up[j] {
			return fmt.Errorf("lp: variable %s has lo %g > up %g", p.varLabel(j), p.lo[j], p.up[j])
		}
		if math.IsNaN(p.lo[j]) || math.IsNaN(p.up[j]) || math.IsNaN(p.obj[j]) {
			return fmt.Errorf("lp: variable %s has NaN bound or objective", p.varLabel(j))
		}
		if math.IsInf(p.obj[j], 0) {
			return fmt.Errorf("lp: variable %s has infinite objective coefficient", p.varLabel(j))
		}
	}
	for i, c := range p.cons {
		if math.IsNaN(c.RHS) || math.IsInf(c.RHS, 0) {
			return fmt.Errorf("lp: constraint %d has invalid RHS %g", i, c.RHS)
		}
		for _, t := range c.Terms {
			if t.Var < 0 || t.Var >= n {
				return fmt.Errorf("lp: constraint %d references variable %d of %d", i, t.Var, n)
			}
			if math.IsNaN(t.Coeff) || math.IsInf(t.Coeff, 0) {
				return fmt.Errorf("lp: constraint %d has invalid coefficient %g", i, t.Coeff)
			}
		}
	}
	return nil
}

func (p *Problem) varLabel(j int) string {
	if p.names[j] != "" {
		return p.names[j]
	}
	return fmt.Sprintf("x%d", j)
}

// Clone returns a deep copy of the problem. Bound mutations on the copy do
// not affect the original; the branch-and-bound solver clones once per
// worker, then mutates bounds per node.
func (p *Problem) Clone() *Problem {
	q := &Problem{
		sense: p.sense,
		obj:   append([]float64(nil), p.obj...),
		lo:    append([]float64(nil), p.lo...),
		up:    append([]float64(nil), p.up...),
		names: append([]string(nil), p.names...),
		cons:  make([]Constraint, len(p.cons)),
	}
	for i, c := range p.cons {
		q.cons[i] = Constraint{Terms: append([]Term(nil), c.Terms...), Op: c.Op, RHS: c.RHS}
	}
	return q
}

// Status reports the outcome of a solve.
type Status int

const (
	// StatusOptimal means an optimal basic feasible solution was found.
	StatusOptimal Status = iota
	// StatusInfeasible means the constraints admit no solution.
	StatusInfeasible
	// StatusUnbounded means the objective is unbounded over the feasible set.
	StatusUnbounded
	// StatusIterLimit means the iteration limit was hit before convergence.
	StatusIterLimit
)

func (s Status) String() string {
	switch s {
	case StatusOptimal:
		return "optimal"
	case StatusInfeasible:
		return "infeasible"
	case StatusUnbounded:
		return "unbounded"
	case StatusIterLimit:
		return "iteration limit"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Result is the outcome of solving a Problem.
type Result struct {
	Status    Status
	Objective float64   // objective value in the problem's sense
	X         []float64 // variable values; valid only when Status is Optimal
	Iters     int       // simplex iterations across both phases

	// Duals holds one dual value per constraint (in the order added, in the
	// problem's own sense), valid when Status is Optimal. For Maximize, a ≤
	// constraint has a non-negative dual; signs flip for ≥ and for Minimize.
	Duals []float64
	// ReducedCosts holds the final reduced cost of every structural
	// variable in the problem's own sense, valid when Status is Optimal.
	// The strong-duality identity holds:
	//   Objective = Σᵢ Duals[i]·bᵢ + Σⱼ ReducedCosts[j]·X[j].
	ReducedCosts []float64
}

// Options tunes the solver. The zero value selects defaults.
type Options struct {
	// MaxIters bounds total simplex iterations; 0 means 50*(m+n)+2000.
	MaxIters int
	// Tol is the feasibility/optimality tolerance; 0 means 1e-9.
	Tol float64
	// Presolve applies fixed-variable substitution and singleton-row
	// elimination before the simplex. Faster for programs with many fixed
	// variables (branch-and-bound nodes); Duals/ReducedCosts are not
	// reported on presolved solves.
	Presolve bool
}

// ErrInvalid wraps validation failures returned by Solve.
var ErrInvalid = errors.New("lp: invalid problem")

// Solve validates and solves the problem. The Problem is not modified; it may
// be solved again (e.g. with different bounds) afterwards.
func (p *Problem) Solve(opts Options) (Result, error) {
	return p.SolveContext(context.Background(), opts)
}

// SolveContext is Solve with cooperative cancellation: the tableau build and
// the simplex iterations periodically poll ctx, and when it is cancelled (or
// its deadline expires) the solve stops promptly and returns a zero Result
// with an error satisfying errors.Is against ctx.Err() — i.e.
// context.Canceled or context.DeadlineExceeded.
func (p *Problem) SolveContext(ctx context.Context, opts Options) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, fmt.Errorf("lp: %w", err)
	}
	if err := p.Validate(); err != nil {
		return Result{}, fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	if opts.Presolve {
		res, err := p.solveWithPresolve(ctx, opts)
		countSolve(ctx, res, err)
		return res, err
	}
	s := newSimplex(ctx, p, opts)
	res := s.solve()
	if s.interrupted {
		return Result{}, fmt.Errorf("lp: %w", ctx.Err())
	}
	countSolve(ctx, res, nil)
	return res, nil
}

// countSolve records one LP solve into the context trace, if any: the solve
// itself and its simplex pivot count (both phases, presolved or not).
func countSolve(ctx context.Context, res Result, err error) {
	tr := obsv.FromContext(ctx)
	if tr == nil || err != nil {
		return
	}
	tr.Count("lp.solves", 1)
	tr.Count("lp.pivots", int64(res.Iters))
}
