package lp

import (
	"context"
	"fmt"
	"math"

	"standout/internal/obsv"
)

// Presolve reductions applied before the simplex when Options.Presolve is
// set. Two safe transformations run to a fixed point:
//
//  1. fixed-variable substitution — a variable with lo == up is folded into
//     every row's right-hand side and removed from the program;
//  2. singleton-row elimination — a row with a single (unfixed) variable is
//     a bound, so it tightens that variable's bounds and disappears.
//
// Tightening can fix further variables (lo == up after tightening), which
// can create further singleton rows, hence the loop. The reductions detect
// some infeasibilities outright (crossed bounds, empty rows with impossible
// RHS). They are exactly the structure branch-and-bound creates in the
// paper's ILP: fixing x_j collapses all of query q's y ≤ x rows.
//
// Dual values are not recovered through presolve: a presolved Result carries
// Duals == nil (the ILP driver never needs them).

// presolved captures the reduced problem and how to undo the reduction.
type presolved struct {
	reduced    *Problem
	fixedVal   []float64 // value for each original variable, NaN if not fixed
	varMap     []int     // original var index → reduced var index (-1 if fixed)
	infeasible bool
}

const presolveTol = 1e-9

// presolve runs the reductions. It never modifies p.
func presolve(p *Problem) presolved {
	n := p.NumVars()
	lo := append([]float64(nil), p.lo...)
	up := append([]float64(nil), p.up...)
	alive := make([]bool, len(p.cons))
	for i := range alive {
		alive[i] = true
	}

	fixed := func(j int) bool { return lo[j] == up[j] }

	// Iterate substitutions and singleton rows until no change.
	for changed := true; changed; {
		changed = false
		for ci, c := range p.cons {
			if !alive[ci] {
				continue
			}
			// Compute the row restricted to unfixed variables.
			rhs := c.RHS
			liveVar, liveCoeff, liveCount := -1, 0.0, 0
			for _, t := range c.Terms {
				if t.Coeff == 0 {
					continue
				}
				if fixed(t.Var) {
					rhs -= t.Coeff * lo[t.Var]
					continue
				}
				liveCount++
				liveVar, liveCoeff = t.Var, t.Coeff
				if liveCount > 1 {
					break
				}
			}
			switch liveCount {
			case 0:
				// Empty row: constant op rhs.
				ok := true
				switch c.Op {
				case LE:
					ok = 0 <= rhs+presolveTol
				case GE:
					ok = 0 >= rhs-presolveTol
				case EQ:
					ok = math.Abs(rhs) <= presolveTol
				}
				if !ok {
					return presolved{infeasible: true}
				}
				alive[ci] = false
				changed = true
			case 1:
				// Singleton row: bound on liveVar.
				// Recompute rhs fully (the early break above cannot trigger
				// with liveCount == 1, so rhs is already complete).
				bound := rhs / liveCoeff
				op := c.Op
				if liveCoeff < 0 { // dividing by a negative flips the sense
					switch op {
					case LE:
						op = GE
					case GE:
						op = LE
					}
				}
				switch op {
				case LE:
					if bound < up[liveVar] {
						up[liveVar] = bound
					}
				case GE:
					if bound > lo[liveVar] {
						lo[liveVar] = bound
					}
				case EQ:
					if bound > lo[liveVar] {
						lo[liveVar] = bound
					}
					if bound < up[liveVar] {
						up[liveVar] = bound
					}
				}
				if lo[liveVar] > up[liveVar]+presolveTol {
					return presolved{infeasible: true}
				}
				// Snap near-equal bounds to an exact fixing.
				if up[liveVar]-lo[liveVar] <= presolveTol {
					mid := lo[liveVar]
					lo[liveVar], up[liveVar] = mid, mid
				}
				alive[ci] = false
				changed = true
			}
		}
	}

	// Build the reduced problem over unfixed variables and alive rows.
	out := presolved{
		fixedVal: make([]float64, n),
		varMap:   make([]int, n),
	}
	red := NewProblem(p.sense)
	for j := 0; j < n; j++ {
		if fixed(j) {
			out.fixedVal[j] = lo[j]
			out.varMap[j] = -1
			continue
		}
		out.fixedVal[j] = math.NaN()
		out.varMap[j] = red.AddVar(lo[j], up[j], p.obj[j], p.names[j])
	}
	for ci, c := range p.cons {
		if !alive[ci] {
			continue
		}
		rhs := c.RHS
		var terms []Term
		for _, t := range c.Terms {
			if t.Coeff == 0 {
				continue
			}
			if out.varMap[t.Var] < 0 {
				rhs -= t.Coeff * out.fixedVal[t.Var]
				continue
			}
			terms = append(terms, Term{Var: out.varMap[t.Var], Coeff: t.Coeff})
		}
		red.AddConstraint(terms, c.Op, rhs)
	}
	out.reduced = red
	return out
}

// expand maps a reduced solution back to the original variable space and
// adds the fixed variables' objective contribution.
func (ps presolved) expand(p *Problem, res Result) Result {
	x := make([]float64, p.NumVars())
	fixedObj := 0.0
	for j := range x {
		if ps.varMap[j] < 0 {
			x[j] = ps.fixedVal[j]
			fixedObj += p.obj[j] * x[j]
		} else {
			x[j] = res.X[ps.varMap[j]]
		}
	}
	res.X = x
	res.Objective += fixedObj
	res.Duals = nil // not recovered through presolve
	res.ReducedCosts = nil
	return res
}

// solveWithPresolve is the Options.Presolve path of Problem.Solve.
func (p *Problem) solveWithPresolve(ctx context.Context, opts Options) (Result, error) {
	ps := presolve(p)
	if tr := obsv.FromContext(ctx); tr != nil && !ps.infeasible {
		tr.Count("lp.presolve.fixed_vars", int64(p.NumVars()-ps.reduced.NumVars()))
		tr.Count("lp.presolve.dropped_rows", int64(p.NumConstraints()-ps.reduced.NumConstraints()))
	}
	if ps.infeasible {
		return Result{Status: StatusInfeasible}, nil
	}
	if ps.reduced.NumVars() == 0 {
		// Everything fixed: verify remaining rows were consumed (they were —
		// presolve only terminates with alive rows if they have ≥ 2 live
		// vars, impossible with zero live vars), and report the constant.
		obj := 0.0
		x := make([]float64, p.NumVars())
		for j := range x {
			x[j] = ps.fixedVal[j]
			obj += p.obj[j] * x[j]
		}
		return Result{Status: StatusOptimal, Objective: obj, X: x}, nil
	}
	inner := opts
	inner.Presolve = false
	res, err := ps.reduced.SolveContext(ctx, inner)
	if err != nil {
		return Result{}, fmt.Errorf("lp: presolved solve: %w", err)
	}
	if res.Status != StatusOptimal {
		return Result{Status: res.Status, Iters: res.Iters}, nil
	}
	return ps.expand(p, res), nil
}
