package lp

import (
	"math"
	"math/rand"
	"testing"
)

func TestPresolveEquivalentOnRandomInstances(t *testing.T) {
	r := rand.New(rand.NewSource(15))
	for trial := 0; trial < 300; trial++ {
		n := 1 + r.Intn(6)
		m := 1 + r.Intn(6)
		sense := Maximize
		if r.Intn(2) == 0 {
			sense = Minimize
		}
		p := NewProblem(sense)
		feas := make([]float64, n)
		for j := 0; j < n; j++ {
			feas[j] = r.Float64() * 2
			if r.Intn(4) == 0 {
				// Fixed variable: the reduction presolve exists for.
				p.AddVar(feas[j], feas[j], r.Float64()*4-2, "")
			} else {
				p.AddVar(0, 2+r.Float64()*2, r.Float64()*4-2, "")
			}
		}
		for i := 0; i < m; i++ {
			var terms []Term
			lhs := 0.0
			nTerms := 1 + r.Intn(n)
			for _, j := range r.Perm(n)[:nTerms] {
				c := r.Float64()*4 - 2
				terms = append(terms, Term{j, c})
				lhs += c * feas[j]
			}
			switch r.Intn(3) {
			case 0:
				p.AddConstraint(terms, EQ, lhs)
			case 1:
				p.AddConstraint(terms, LE, lhs+r.Float64())
			default:
				p.AddConstraint(terms, GE, lhs-r.Float64())
			}
		}
		plain, err := p.Solve(Options{})
		if err != nil {
			t.Fatal(err)
		}
		pre, err := p.Solve(Options{Presolve: true})
		if err != nil {
			t.Fatal(err)
		}
		if plain.Status != pre.Status {
			t.Fatalf("trial %d: status %v vs %v", trial, plain.Status, pre.Status)
		}
		if plain.Status == StatusOptimal && math.Abs(plain.Objective-pre.Objective) > 1e-5 {
			t.Fatalf("trial %d: objective %v vs %v", trial, plain.Objective, pre.Objective)
		}
	}
}

func TestPresolveAllFixed(t *testing.T) {
	p := NewProblem(Maximize)
	x := p.AddVar(2, 2, 3, "x")
	y := p.AddVar(1, 1, 1, "y")
	p.AddConstraint([]Term{{x, 1}, {y, 1}}, LE, 5)
	res, err := p.Solve(Options{Presolve: true})
	if err != nil {
		t.Fatal(err)
	}
	wantOptimal(t, res, 7)
	if res.X[x] != 2 || res.X[y] != 1 {
		t.Fatalf("x=%v", res.X)
	}
}

func TestPresolveDetectsInfeasibleConstantRow(t *testing.T) {
	p := NewProblem(Maximize)
	x := p.AddVar(2, 2, 1, "x")
	p.AddConstraint([]Term{{x, 1}}, LE, 1) // 2 ≤ 1: impossible
	res, err := p.Solve(Options{Presolve: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusInfeasible {
		t.Fatalf("status=%v", res.Status)
	}
}

func TestPresolveSingletonChain(t *testing.T) {
	// x = 3 via a singleton EQ row fixes x; then y's row becomes singleton
	// and bounds y; objective picks y at its tightened bound.
	p := NewProblem(Maximize)
	x := p.AddVar(0, 10, 0, "x")
	y := p.AddVar(0, 10, 1, "y")
	p.AddConstraint([]Term{{x, 1}}, EQ, 3)
	p.AddConstraint([]Term{{x, 1}, {y, 1}}, LE, 8) // → y ≤ 5
	res, err := p.Solve(Options{Presolve: true})
	if err != nil {
		t.Fatal(err)
	}
	wantOptimal(t, res, 5)
	if math.Abs(res.X[x]-3) > eps || math.Abs(res.X[y]-5) > eps {
		t.Fatalf("x=%v", res.X)
	}
}

func TestPresolveNegativeCoefficientSingleton(t *testing.T) {
	// −2x ≤ −6 ⟺ x ≥ 3.
	p := NewProblem(Minimize)
	x := p.AddVar(0, 10, 1, "x")
	p.AddConstraint([]Term{{x, -2}}, LE, -6)
	res, err := p.Solve(Options{Presolve: true})
	if err != nil {
		t.Fatal(err)
	}
	wantOptimal(t, res, 3)
}

func TestPresolveCrossedBoundsInfeasible(t *testing.T) {
	p := NewProblem(Maximize)
	x := p.AddVar(0, 10, 1, "x")
	p.AddConstraint([]Term{{x, 1}}, GE, 7)
	p.AddConstraint([]Term{{x, 1}}, LE, 3)
	res, err := p.Solve(Options{Presolve: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusInfeasible {
		t.Fatalf("status=%v", res.Status)
	}
}

func TestPresolveUnboundedPassthrough(t *testing.T) {
	p := NewProblem(Maximize)
	p.AddVar(0, math.Inf(1), 1, "x")
	res, err := p.Solve(Options{Presolve: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusUnbounded {
		t.Fatalf("status=%v", res.Status)
	}
}

func TestPresolveDualsNil(t *testing.T) {
	p := NewProblem(Maximize)
	x := p.AddVar(0, 1, 1, "x")
	y := p.AddVar(1, 1, 1, "y") // fixed, so presolve actually reduces
	p.AddConstraint([]Term{{x, 1}, {y, 1}}, LE, 2)
	res, err := p.Solve(Options{Presolve: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusOptimal || res.Duals != nil || res.ReducedCosts != nil {
		t.Fatalf("res=%+v", res)
	}
}
