package index

import (
	"math/rand"
	"testing"

	"standout/internal/bitvec"
	"standout/internal/dataset"
)

// randomLog builds a log with nq random queries of 1..maxQ attributes.
func randomLog(t *testing.T, r *rand.Rand, width, nq, maxQ int) *dataset.QueryLog {
	t.Helper()
	log := dataset.NewQueryLog(dataset.GenericSchema(width))
	for i := 0; i < nq; i++ {
		q := bitvec.New(width)
		k := 1 + r.Intn(maxQ)
		if k > width {
			k = width
		}
		for q.Count() < k {
			q.Set(r.Intn(width))
		}
		if err := log.Append(q); err != nil {
			t.Fatal(err)
		}
	}
	return log
}

func randomVec(r *rand.Rand, width int, density float64) bitvec.Vector {
	v := bitvec.New(width)
	for i := 0; i < width; i++ {
		if r.Float64() < density {
			v.Set(i)
		}
	}
	return v
}

// TestAgainstNaive cross-checks every index query form against the direct
// log scans it replaces, over random instances including multi-word bitmaps
// (nq > 64) and multi-word vectors (width > 64).
func TestAgainstNaive(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		width := 1 + r.Intn(90) // crosses the 64-bit word boundary
		nq := r.Intn(200)       // crosses the 64-query word boundary
		log := randomLog(t, r, width, nq, 6)
		ix, err := Build(log)
		if err != nil {
			t.Fatal(err)
		}
		if ix.NumQueries() != nq || ix.Width() != width || ix.Log() != log {
			t.Fatalf("shape: got (%d,%d)", ix.NumQueries(), ix.Width())
		}
		if got, want := ix.Fingerprint(), log.Fingerprint(); got != want {
			t.Fatalf("fingerprint %d != log %d", got, want)
		}

		wantFreq := log.AttrFrequencies()
		for a := 0; a < width; a++ {
			if ix.AttrFrequencies()[a] != wantFreq[a] {
				t.Fatalf("freq[%d] = %d, want %d", a, ix.AttrFrequencies()[a], wantFreq[a])
			}
			if got := ix.QueriesWith(a).Count(); got != wantFreq[a] {
				t.Fatalf("|QueriesWith(%d)| = %d, want %d", a, got, wantFreq[a])
			}
		}

		for probe := 0; probe < 10; probe++ {
			tuple := randomVec(r, width, r.Float64())
			if got, want := ix.Satisfied(tuple), log.Satisfied(tuple); got != want {
				t.Fatalf("Satisfied = %d, want %d (width=%d nq=%d)", got, want, width, nq)
			}
			cand := ix.Candidates(tuple)
			wantIdx := log.SatisfiedBy(tuple)
			if gotIdx := cand.Ones(); len(gotIdx) != len(wantIdx) {
				t.Fatalf("|Candidates| = %d, want %d", len(gotIdx), len(wantIdx))
			} else {
				for i := range gotIdx {
					if gotIdx[i] != wantIdx[i] {
						t.Fatalf("Candidates[%d] = %d, want %d", i, gotIdx[i], wantIdx[i])
					}
					if !cand.Get(gotIdx[i]) {
						t.Fatalf("Get(%d) = false inside Ones()", gotIdx[i])
					}
				}
			}

			// Score a random compression of the tuple three ways.
			kept := tuple.Clone()
			for _, a := range tuple.Ones() {
				if r.Intn(2) == 0 {
					kept.Clear(a)
				}
			}
			want := log.Satisfied(kept)
			if got := ix.SatisfiedWithin(cand, kept, nil); got != want {
				t.Fatalf("SatisfiedWithin = %d, want %d", got, want)
			}
			var drop []int
			for _, a := range tuple.Ones() {
				if !kept.Get(a) {
					drop = append(drop, a)
				}
			}
			scratch := make(Bitmap, ix.Words())
			if got := ix.SatisfiedDropping(cand, drop, scratch); got != want {
				t.Fatalf("SatisfiedDropping = %d, want %d", got, want)
			}
		}
	}
}

func TestEmptyLog(t *testing.T) {
	log := dataset.NewQueryLog(dataset.GenericSchema(5))
	ix, err := Build(log)
	if err != nil {
		t.Fatal(err)
	}
	tuple := bitvec.FromIndices(5, 0, 2)
	if got := ix.Satisfied(tuple); got != 0 {
		t.Fatalf("Satisfied on empty log = %d", got)
	}
	if got := ix.Candidates(tuple).Count(); got != 0 {
		t.Fatalf("Candidates on empty log = %d", got)
	}
	if ix.MaxQuerySize() != 0 {
		t.Fatalf("MaxQuerySize = %d", ix.MaxQuerySize())
	}
}

func TestSizeBuckets(t *testing.T) {
	log := dataset.NewQueryLog(dataset.GenericSchema(6))
	for _, spec := range [][]int{{0}, {1, 2}, {3, 4, 5}, {0, 1, 2, 3}} {
		if err := log.Append(bitvec.FromIndices(6, spec...)); err != nil {
			t.Fatal(err)
		}
	}
	ix, err := Build(log)
	if err != nil {
		t.Fatal(err)
	}
	for k, want := range map[int]int{-1: 0, 0: 0, 1: 1, 2: 2, 3: 3, 4: 4, 99: 4} {
		if got := ix.SizeAtMost(k).Count(); got != want {
			t.Fatalf("SizeAtMost(%d) = %d, want %d", k, got, want)
		}
	}
	if ix.MaxQuerySize() != 4 {
		t.Fatalf("MaxQuerySize = %d, want 4", ix.MaxQuerySize())
	}
}

func TestStale(t *testing.T) {
	log := dataset.NewQueryLog(dataset.GenericSchema(4))
	if err := log.Append(bitvec.FromIndices(4, 0)); err != nil {
		t.Fatal(err)
	}
	ix, err := Build(log)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Stale() {
		t.Fatal("fresh index reported stale")
	}
	if err := log.Append(bitvec.FromIndices(4, 1)); err != nil {
		t.Fatal(err)
	}
	if !ix.Stale() {
		t.Fatal("index not stale after Append")
	}

	ix2, err := Build(log)
	if err != nil {
		t.Fatal(err)
	}
	log.Queries[0].Set(3) // in-place mutation, announced via Touch
	log.Touch()
	if !ix2.Stale() {
		t.Fatal("index not stale after Touch")
	}
}

func TestBuildRejectsInvalidLog(t *testing.T) {
	log := dataset.NewQueryLog(dataset.GenericSchema(4))
	log.Queries = append(log.Queries, bitvec.New(9)) // wrong width, bypassing Append
	if _, err := Build(log); err == nil {
		t.Fatal("Build accepted an invalid log")
	}
}

func TestPanicsOnWidthMismatch(t *testing.T) {
	log := randomLog(t, rand.New(rand.NewSource(1)), 8, 10, 3)
	ix, err := Build(log)
	if err != nil {
		t.Fatal(err)
	}
	for name, fn := range map[string]func(){
		"Candidates": func() { ix.Candidates(bitvec.New(9)) },
		"Satisfied":  func() { ix.Satisfied(bitvec.New(7)) },
		"QueriesWith": func() {
			ix.QueriesWith(8)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic on mismatch", name)
				}
			}()
			fn()
		}()
	}
}

func TestBitmapClone(t *testing.T) {
	b := Bitmap{0b1011}
	c := b.Clone()
	c[0] = 0
	if b[0] != 0b1011 {
		t.Fatal("Clone shares storage")
	}
	if got := b.Count(); got != 3 {
		t.Fatalf("Count = %d", got)
	}
}
