package index

import (
	"fmt"

	"standout/internal/bitvec"
	"standout/internal/dataset"
)

// Segmented is an incrementally extensible index over one query log: an
// ordered list of immutable Index segments, each built over a contiguous
// window of the log, jointly covering queries [0, NumQueries). An append to
// the log extends the index by building one small delta segment over only
// the new queries — O(appended) work — instead of rebuilding over the whole
// log, and size-tiered compaction (CompactTiered) merges trailing segments
// back together so the segment count stays O(log S) under any append
// schedule.
//
// Exactness composes additively: a query index qi of the log lives in
// exactly one segment (the one whose window contains it), every Satisfied
// variant of a segment counts only its own window, and the sum over segments
// therefore equals the count a monolithic index would return. The
// differential suite in internal/core pins bit-identical solver answers
// between the two; FuzzSegmentMerge pins that any append/compact schedule
// scores identically to a one-shot build.
//
// A Segmented value is immutable and safe for unbounded concurrent use:
// Extend and the compaction methods return new values, structurally sharing
// every untouched segment, so a serving layer can swap generations under
// load while in-flight solves keep scoring the one they started with.
type Segmented struct {
	log  *dataset.QueryLog
	segs []*Index
	offs []int // offs[i]: global index of segs[i]'s first query

	nq          int
	width       int
	version     uint64
	mode        Mode
	totalWeight int

	// Rolling fingerprint: hstate is the pre-finalized fold of queries
	// [0, nq), extended in O(appended) by Extend; fp is its finalization,
	// always equal to log.Fingerprint() at (version, nq).
	hstate uint64
	fp     uint64

	// freq aggregates the segments' weighted attribute frequencies.
	freq []int
}

// BuildSegmented indexes the log as a single base segment. opts as BuildWith.
func BuildSegmented(log *dataset.QueryLog, opts Options) (*Segmented, error) {
	if err := log.Validate(); err != nil {
		return nil, err
	}
	version, nq := log.Version(), log.Size()
	base, err := BuildWith(log.Window(0, nq), opts)
	if err != nil {
		return nil, err
	}
	h := log.FoldFingerprint(dataset.FingerprintSeed(), 0, nq)
	s := &Segmented{
		log:         log,
		segs:        []*Index{base},
		offs:        []int{0},
		nq:          nq,
		width:       log.Width(),
		version:     version,
		mode:        opts.Mode,
		totalWeight: base.TotalWeight(),
		hstate:      h,
		fp:          dataset.FinishFingerprint(h, nq, log.Width()),
	}
	s.refreshFreq()
	return s, nil
}

// Extend returns a new Segmented covering log's current contents by
// appending one delta segment over the queries beyond s's coverage. The
// caller must have proven that log's first NumQueries entries are exactly
// the contents s indexed — dataset.QueryLog.ExtendsFrom against s's
// (Version, NumQueries) snapshot is that proof; core.PrepareLogFrom performs
// it. Extending by zero queries returns a value equivalent to s retargeted
// at log. Extend never merges; run CompactTiered (or Compact) afterwards to
// bound the segment count.
func (s *Segmented) Extend(log *dataset.QueryLog) (*Segmented, error) {
	nq := log.Size()
	if nq < s.nq {
		return nil, fmt.Errorf("index: segmented extend: log shrank (%d < %d)", nq, s.nq)
	}
	if log.Width() != s.width {
		return nil, fmt.Errorf("index: segmented extend: width %d, index width %d", log.Width(), s.width)
	}
	version := log.Version()
	out := &Segmented{
		log:     log,
		segs:    s.segs,
		offs:    s.offs,
		nq:      nq,
		width:   s.width,
		version: version,
		mode:    s.mode,
		hstate:  log.FoldFingerprint(s.hstate, s.nq, nq),
	}
	out.fp = dataset.FinishFingerprint(out.hstate, nq, s.width)
	if nq > s.nq {
		delta, err := BuildWith(log.Window(s.nq, nq), Options{Mode: s.mode})
		if err != nil {
			return nil, err
		}
		out.segs = append(append([]*Index(nil), s.segs...), delta)
		out.offs = append(append([]int(nil), s.offs...), s.nq)
	}
	for _, seg := range out.segs {
		out.totalWeight += seg.TotalWeight()
	}
	out.refreshFreq()
	return out, nil
}

// CompactTiered applies the size-tiered merge policy: the trailing run of
// segments is merged (rebuilt as one segment over the combined window)
// cascading while each preceding segment is no larger than the combined
// tail. The resulting invariant — every segment strictly larger than the one
// after it — keeps the segment count logarithmic under single-query appends
// (the merge schedule is a binary counter: amortized O(log S) merge work per
// append) and bounded by the number of distinct batch sizes otherwise.
// Returns s unchanged (merged == 0) when the policy is already satisfied.
func (s *Segmented) CompactTiered() (*Segmented, int, error) {
	n := len(s.segs)
	lo := n - 1
	for lo > 0 && s.segs[lo-1].NumQueries() <= s.nq-s.offs[lo] {
		lo--
	}
	if lo == n-1 {
		return s, 0, nil
	}
	return s.mergeFrom(lo, n-1-lo)
}

// Compact merges every segment into one base segment, the fully-amortized
// form equivalent to a fresh BuildSegmented of the current contents.
func (s *Segmented) Compact() (*Segmented, error) {
	if len(s.segs) <= 1 {
		return s, nil
	}
	out, _, err := s.mergeFrom(0, len(s.segs)-1)
	return out, err
}

// mergeFrom rebuilds segments [lo, len) as one segment over their combined
// window, sharing the untouched prefix.
func (s *Segmented) mergeFrom(lo, merged int) (*Segmented, int, error) {
	tail, err := BuildWith(s.log.Window(s.offs[lo], s.nq), Options{Mode: s.mode})
	if err != nil {
		return nil, 0, err
	}
	out := *s
	out.segs = append(append([]*Index(nil), s.segs[:lo]...), tail)
	out.offs = append(append([]int(nil), s.offs[:lo]...), s.offs[lo])
	out.refreshFreq()
	return &out, merged, nil
}

// refreshFreq recomputes the aggregated weighted attribute frequencies.
func (s *Segmented) refreshFreq() {
	s.freq = make([]int, s.width)
	for _, seg := range s.segs {
		for a, f := range seg.AttrFrequencies() {
			s.freq[a] += f
		}
	}
}

// Log returns the indexed query log.
func (s *Segmented) Log() *dataset.QueryLog { return s.log }

// Fingerprint returns the content hash of the covered log prefix, equal to
// the log's Fingerprint at build/extend time.
func (s *Segmented) Fingerprint() uint64 { return s.fp }

// Version returns the log's version counter at build/extend time.
func (s *Segmented) Version() uint64 { return s.version }

// NumQueries returns the covered log size S.
func (s *Segmented) NumQueries() int { return s.nq }

// TotalWeight returns the covered queries' total weight.
func (s *Segmented) TotalWeight() int { return s.totalWeight }

// Width returns the attribute count M.
func (s *Segmented) Width() int { return s.width }

// Mode returns the representation policy the segments are built with.
func (s *Segmented) Mode() Mode { return s.mode }

// Segments returns the number of segments.
func (s *Segmented) Segments() int { return len(s.segs) }

// Segment returns segment i's index; its query ids are local to the window
// starting at Offset(i).
func (s *Segmented) Segment(i int) *Index { return s.segs[i] }

// Offset returns the global index of segment i's first query.
func (s *Segmented) Offset(i int) int { return s.offs[i] }

// Stale reports whether the log has visibly changed since the build or
// extension that produced s: its version moved or its length differs.
func (s *Segmented) Stale() bool {
	return s.log.Version() != s.version || s.log.Size() != s.nq
}

// AppendOnlySince reports whether the log at (version, size) grew into s's
// snapshot purely through appends — the certificate that a delta build over
// [size, NumQueries) is sound. It relies on Append advancing the version by
// exactly 1 per query and Touch by 2.
func (s *Segmented) AppendOnlySince(version uint64, size int) bool {
	ds := s.nq - size
	return ds >= 0 && s.version-version == uint64(ds)
}

// AttrFrequencies returns the per-attribute weighted frequencies aggregated
// across segments, equal to the log's own AttrFrequencies. Read-only.
func (s *Segmented) AttrFrequencies() []int { return s.freq }

// Satisfied returns the total weight of covered queries retrieving v —
// the per-segment counts summed. Equivalent to log.Satisfied(v).
func (s *Segmented) Satisfied(v bitvec.Vector) int {
	total := 0
	for _, seg := range s.segs {
		total += seg.Satisfied(v)
	}
	return total
}

// Mem aggregates the segments' representation statistics.
func (s *Segmented) Mem() MemStats {
	var st MemStats
	for _, seg := range s.segs {
		m := seg.Mem()
		st.DenseColumns += m.DenseColumns
		st.CompressedColumns += m.CompressedColumns
		st.DenseBuckets += m.DenseBuckets
		st.CompressedBuckets += m.CompressedBuckets
		st.Bytes += m.Bytes
	}
	return st
}
