package index

import (
	"math/rand"
	"strings"
	"testing"

	"standout/internal/bitvec"
	"standout/internal/dataset"
)

// sparseLog builds a log with nq queries over width attributes where a few
// attributes are hot and the rest appear in at most a handful of queries —
// the wide-schema shape the compressed representation exists for.
func sparseLog(width, nq int, seed int64) *dataset.QueryLog {
	rng := rand.New(rand.NewSource(seed))
	log := dataset.NewQueryLog(dataset.GenericSchema(width))
	for i := 0; i < nq; i++ {
		q := bitvec.New(width)
		q.Set(rng.Intn(4))           // hot attributes 0..3
		q.Set(4 + rng.Intn(width-4)) // one cold attribute
		log.Queries = append(log.Queries, q)
	}
	return log
}

func TestAutoModePicksPerColumn(t *testing.T) {
	const width, nq = 300, 4096
	log := sparseLog(width, nq, 7)
	ix, err := Build(log)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Mode() != Auto {
		t.Fatalf("Mode = %d, want Auto", ix.Mode())
	}
	freq := ix.AttrFrequencies()
	hot, cold := 0, 0
	for a := 0; a < width; a++ {
		comp := ix.ColumnCompressed(a)
		wantComp := freq[a]*autoDensityDiv <= nq
		if comp != wantComp {
			t.Fatalf("column %d (freq %d of %d): compressed=%t, heuristic wants %t",
				a, freq[a], nq, comp, wantComp)
		}
		if comp {
			cold++
		} else {
			hot++
		}
	}
	if hot == 0 || cold == 0 {
		t.Fatalf("degenerate workload: %d dense, %d compressed columns — test proves nothing", hot, cold)
	}

	// Below the size floor nothing compresses, however sparse.
	small := sparseLog(width, autoMinQueries-1, 7)
	sx, err := Build(small)
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < width; a++ {
		if sx.ColumnCompressed(a) {
			t.Fatalf("column %d compressed on a %d-query log, below the %d floor",
				a, autoMinQueries-1, autoMinQueries)
		}
	}

	mem := ix.Mem()
	if mem.CompressedColumns != cold || mem.DenseColumns != hot {
		t.Fatalf("Mem columns %d/%d, counted %d/%d",
			mem.DenseColumns, mem.CompressedColumns, hot, cold)
	}
	if mem.Bytes <= 0 {
		t.Fatalf("Mem.Bytes = %d", mem.Bytes)
	}

	// The whole point: the auto layout must be smaller than all-dense.
	dx, err := BuildWith(log, Options{Mode: ForceDense})
	if err != nil {
		t.Fatal(err)
	}
	if auto, dense := ix.Mem().Bytes, dx.Mem().Bytes; auto >= dense {
		t.Fatalf("auto layout %d bytes, all-dense %d — compression bought nothing", auto, dense)
	}
}

// TestModesAgree drives random logs and tuples through all three modes and
// every scoring entry point, demanding bit-identical sets and counts.
func TestModesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		width := 2 + rng.Intn(12)
		nq := 1 + rng.Intn(60)
		log := dataset.NewQueryLog(dataset.GenericSchema(width))
		for i := 0; i < nq; i++ {
			q := bitvec.New(width)
			for q.Count() == 0 {
				for a := 0; a < width; a++ {
					if rng.Intn(3) == 0 {
						q.Set(a)
					}
				}
			}
			log.Queries = append(log.Queries, q)
		}

		var ixs [3]*Index
		for m, mode := range []Mode{Auto, ForceDense, ForceCompressed} {
			ix, err := BuildWith(log, Options{Mode: mode})
			if err != nil {
				t.Fatal(err)
			}
			ixs[m] = ix
		}
		if !ixs[2].ColumnCompressed(0) {
			t.Fatal("ForceCompressed left column 0 dense")
		}
		if ixs[1].ColumnCompressed(0) {
			t.Fatal("ForceDense compressed column 0")
		}

		for probe := 0; probe < 10; probe++ {
			tuple := bitvec.New(width)
			for a := 0; a < width; a++ {
				if rng.Intn(2) == 0 {
					tuple.Set(a)
				}
			}
			kept := bitvec.New(width)
			for _, a := range tuple.Ones() {
				if rng.Intn(2) == 0 {
					kept.Set(a)
				}
			}
			drop := tuple.AndNot(kept).Ones()

			ref := ixs[0].Candidates(tuple)
			refDrop := ixs[0].SatisfiedDropping(ref, drop, nil)
			for m := 1; m < 3; m++ {
				ix := ixs[m]
				cand := ix.Candidates(tuple)
				if ref.Count() != cand.Count() {
					t.Fatalf("mode %d: Candidates %d, Auto %d", m, cand.Count(), ref.Count())
				}
				for i := range ref {
					if ref[i] != cand[i] {
						t.Fatalf("mode %d: candidate words diverge", m)
					}
				}
				if got := ix.SatisfiedDropping(cand, drop, nil); got != refDrop {
					t.Fatalf("mode %d: SatisfiedDropping %d, Auto %d", m, got, refDrop)
				}
				cs := ix.CandidateSet(tuple)
				if got := ix.SatisfiedDroppingBits(cs, drop, nil); got != refDrop {
					t.Fatalf("mode %d: SatisfiedDroppingBits %d, Auto %d", m, got, refDrop)
				}
				if got := ix.SatisfiedWithinBits(cs, kept, ix.NewScratch()); got != refDrop {
					t.Fatalf("mode %d: SatisfiedWithinBits %d, Auto %d", m, got, refDrop)
				}
				if got, want := ix.Satisfied(kept), log.Satisfied(kept); got != want {
					t.Fatalf("mode %d: Satisfied %d, log %d", m, got, want)
				}
				for k := 0; k <= ix.MaxQuerySize(); k++ {
					if got, want := ix.SizeAtMost(k).Count(), ixs[0].SizeAtMost(k).Count(); got != want {
						t.Fatalf("mode %d: SizeAtMost(%d) %d, Auto %d", m, k, got, want)
					}
				}
				for a := 0; a < width; a++ {
					want := ixs[0].QueriesWith(a).Count()
					if got := ix.QueriesWith(a).Count(); got != want {
						t.Fatalf("mode %d: QueriesWith(%d) %d, Auto %d", m, a, got, want)
					}
					if got := ix.Column(a).Count(); got != want {
						t.Fatalf("mode %d: Column(%d) count %d, Auto %d", m, a, got, want)
					}
				}
			}
		}
	}
}

// TestScratchReuseNoAlloc pins the hot-loop allocation contract: scoring
// through a warm Scratch allocates nothing, in both representations.
func TestScratchReuseNoAlloc(t *testing.T) {
	log := sparseLog(200, 2048, 13)
	for _, mode := range []Mode{ForceDense, ForceCompressed} {
		ix, err := BuildWith(log, Options{Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		tuple := bitvec.New(200)
		for a := 0; a < 40; a++ {
			tuple.Set(a)
		}
		cand := ix.CandidateSet(tuple)
		drop := []int{1, 3, 17}
		sc := ix.NewScratch()
		ix.SatisfiedDroppingBits(cand, drop, sc) // warm the scratch
		allocs := testing.AllocsPerRun(50, func() {
			ix.SatisfiedDroppingBits(cand, drop, sc)
		})
		if allocs != 0 {
			t.Fatalf("mode %d: warm SatisfiedDroppingBits allocates %.1f/op, want 0", mode, allocs)
		}
	}
}

func TestBitmapGetBounds(t *testing.T) {
	b := Bitmap{0b101}
	if !b.Get(0) || b.Get(1) || !b.Get(2) || b.Get(63) {
		t.Fatal("Get misreads in-range bits")
	}
	for _, i := range []int{-1, 64, 1000} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("Get(%d) did not panic", i)
				}
				if msg, ok := r.(string); !ok || !strings.Contains(msg, "out of range") {
					t.Fatalf("Get(%d) panic %v lacks a descriptive message", i, r)
				}
			}()
			b.Get(i)
		}()
	}
}

func TestColumnAccessorsPanicOutOfRange(t *testing.T) {
	log := sparseLog(10, 8, 1)
	ix, err := Build(log)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []func(){
		func() { ix.QueriesWith(10) },
		func() { ix.QueriesWith(-1) },
		func() { ix.Column(10) },
		func() { ix.ColumnCompressed(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic on out-of-range attribute")
				}
			}()
			f()
		}()
	}
}

// TestCompressedSharedReadOnly proves the scoring paths never mutate the
// index's own column/bucket storage or the caller's candidate set.
func TestCompressedSharedReadOnly(t *testing.T) {
	log := sparseLog(50, 64, 3)
	ix, err := BuildWith(log, Options{Mode: ForceCompressed})
	if err != nil {
		t.Fatal(err)
	}
	tuple := bitvec.New(50)
	for a := 0; a < 20; a++ {
		tuple.Set(a)
	}
	cs := ix.CandidateSet(tuple)
	before := cs.Key()
	bucketBefore := ix.SizeAtMost(ix.MaxQuerySize()).Count()
	sc := ix.NewScratch()
	ix.SatisfiedDroppingBits(cs, []int{0, 1, 2}, sc)
	ix.SatisfiedWithinBits(cs, bitvec.New(50), sc)
	if cs.Key() != before {
		t.Fatal("scoring mutated the candidate set")
	}
	if ix.SizeAtMost(ix.MaxQuerySize()).Count() != bucketBefore {
		t.Fatal("scoring mutated a size bucket")
	}
	for a := 0; a < 50; a++ {
		want := 0
		for _, q := range log.Queries {
			if q.Get(a) {
				want++
			}
		}
		if got := ix.Column(a).Count(); got != want {
			t.Fatalf("column %d count %d after scoring, want %d", a, got, want)
		}
	}
}
