package index

import (
	"math/rand"
	"testing"

	"standout/internal/bitvec"
	"standout/internal/dataset"
)

// segRandLog builds a log of nq random queries over width attributes.
func segRandLog(r *rand.Rand, width, nq int) *dataset.QueryLog {
	log := dataset.NewQueryLog(dataset.GenericSchema(width))
	for i := 0; i < nq; i++ {
		v := bitvec.New(width)
		for j := 0; j < width; j++ {
			if r.Intn(3) == 0 {
				v.Set(j)
			}
		}
		if err := log.Append(v); err != nil {
			panic(err)
		}
	}
	return log
}

func segRandVec(r *rand.Rand, width int) bitvec.Vector {
	v := bitvec.New(width)
	for j := 0; j < width; j++ {
		if r.Intn(2) == 0 {
			v.Set(j)
		}
	}
	return v
}

func TestSegmentedSingleSegmentMatchesIndex(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	log := segRandLog(r, 12, 300)
	seg, err := BuildSegmented(log, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if seg.Segments() != 1 || seg.NumQueries() != 300 {
		t.Fatalf("segments=%d nq=%d", seg.Segments(), seg.NumQueries())
	}
	if seg.Fingerprint() != log.Fingerprint() {
		t.Fatalf("rolling fingerprint %x != log fingerprint %x", seg.Fingerprint(), log.Fingerprint())
	}
	for i := 0; i < 50; i++ {
		v := segRandVec(r, 12)
		if got, want := seg.Satisfied(v), log.Satisfied(v); got != want {
			t.Fatalf("Satisfied(%v) = %d, want %d", v, got, want)
		}
	}
}

func TestSegmentedExtendScoresExactly(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for _, mode := range []Mode{Auto, ForceDense, ForceCompressed} {
		log := segRandLog(r, 10, 40)
		seg, err := BuildSegmented(log, Options{Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		// Three append rounds without compaction: four segments.
		for round := 0; round < 3; round++ {
			for i := 0; i < 10+round; i++ {
				if err := log.Append(segRandVec(r, 10)); err != nil {
					t.Fatal(err)
				}
			}
			seg, err = seg.Extend(log)
			if err != nil {
				t.Fatal(err)
			}
		}
		if seg.Segments() != 4 {
			t.Fatalf("mode %v: segments = %d, want 4", mode, seg.Segments())
		}
		if seg.Stale() {
			t.Fatal("freshly extended segmented index reports stale")
		}
		if seg.Fingerprint() != log.Fingerprint() {
			t.Fatalf("mode %v: rolling fingerprint diverged", mode)
		}
		for i := 0; i < 40; i++ {
			v := segRandVec(r, 10)
			if got, want := seg.Satisfied(v), log.Satisfied(v); got != want {
				t.Fatalf("mode %v: Satisfied = %d, want %d", mode, got, want)
			}
		}
		// Aggregated frequencies match the log's.
		want := log.AttrFrequencies()
		for a, f := range seg.AttrFrequencies() {
			if f != want[a] {
				t.Fatalf("mode %v: freq[%d] = %d, want %d", mode, a, f, want[a])
			}
		}
	}
}

func TestSegmentedCompactTiered(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	log := segRandLog(r, 8, 64)
	seg, err := BuildSegmented(log, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Unit appends with tiered compaction after each: binary-counter merge
	// schedule keeps the segment count logarithmic.
	for i := 0; i < 64; i++ {
		if err := log.Append(segRandVec(r, 8)); err != nil {
			t.Fatal(err)
		}
		seg, err = seg.Extend(log)
		if err != nil {
			t.Fatal(err)
		}
		seg, _, err = seg.CompactTiered()
		if err != nil {
			t.Fatal(err)
		}
		// Invariant: sizes strictly decreasing.
		for si := 1; si < seg.Segments(); si++ {
			prev := seg.Segment(si - 1).NumQueries()
			cur := seg.Segment(si).NumQueries()
			if prev <= cur {
				t.Fatalf("after append %d: segment sizes not decreasing (%d then %d)", i, prev, cur)
			}
		}
		if seg.Segments() > 9 { // 128 queries → ≤ ⌈log2⌉+2 segments
			t.Fatalf("after append %d: %d segments, tiering not bounding", i, seg.Segments())
		}
	}
	if got, want := seg.NumQueries(), 128; got != want {
		t.Fatalf("nq = %d, want %d", got, want)
	}
	for i := 0; i < 40; i++ {
		v := segRandVec(r, 8)
		if got, want := seg.Satisfied(v), log.Satisfied(v); got != want {
			t.Fatalf("Satisfied = %d, want %d", got, want)
		}
	}
	// Full compaction collapses to one segment, still exact.
	seg, err = seg.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if seg.Segments() != 1 {
		t.Fatalf("Compact left %d segments", seg.Segments())
	}
	if seg.Fingerprint() != log.Fingerprint() {
		t.Fatal("fingerprint diverged after full compaction")
	}
}

func TestSegmentedImmutableGenerations(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	log := segRandLog(r, 8, 30)
	gen0, err := BuildSegmented(log, Options{})
	if err != nil {
		t.Fatal(err)
	}
	v := segRandVec(r, 8)
	before := gen0.Satisfied(v)

	// Copy-on-write extension: the old generation keeps scoring its snapshot.
	next := log.Extend()
	for i := 0; i < 20; i++ {
		if err := next.Append(segRandVec(r, 8)); err != nil {
			t.Fatal(err)
		}
	}
	gen1, err := gen0.Extend(next)
	if err != nil {
		t.Fatal(err)
	}
	if got := gen0.Satisfied(v); got != before {
		t.Fatalf("old generation changed: %d → %d", before, got)
	}
	if gen0.Segments() != 1 || gen1.Segments() != 2 {
		t.Fatalf("segments: gen0 %d gen1 %d", gen0.Segments(), gen1.Segments())
	}
	if got, want := gen1.Satisfied(v), next.Satisfied(v); got != want {
		t.Fatalf("new generation Satisfied = %d, want %d", got, want)
	}
	if !next.ExtendsFrom(log, gen0.Version(), gen0.NumQueries()) {
		t.Fatal("lineage proof failed for a straightforward Extend")
	}
	// A Touch on the new generation voids delta-extension certificates.
	next.Touch()
	if next.ExtendsFrom(log, gen0.Version(), gen0.NumQueries()) {
		t.Fatal("lineage proof survived a Touch")
	}
}

func TestSegmentedWeighted(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	log := dataset.NewQueryLog(dataset.GenericSchema(8))
	for i := 0; i < 50; i++ {
		if err := log.AppendWeighted(segRandVec(r, 8), 1+r.Intn(5)); err != nil {
			t.Fatal(err)
		}
	}
	seg, err := BuildSegmented(log, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		if err := log.AppendWeighted(segRandVec(r, 8), 1+r.Intn(5)); err != nil {
			t.Fatal(err)
		}
	}
	seg, err = seg.Extend(log)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := seg.TotalWeight(), log.TotalWeight(); got != want {
		t.Fatalf("TotalWeight = %d, want %d", got, want)
	}
	for i := 0; i < 40; i++ {
		v := segRandVec(r, 8)
		if got, want := seg.Satisfied(v), log.Satisfied(v); got != want {
			t.Fatalf("weighted Satisfied = %d, want %d", got, want)
		}
	}
}
