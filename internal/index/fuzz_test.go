package index

import (
	"testing"

	"standout/internal/bitvec"
	"standout/internal/dataset"
)

// FuzzSatisfiedDropping pits the word-parallel scoring fast path against a
// naive per-query rescorer on fuzzer-shaped logs. The fast path computes
// satisfied counts by AND-NOT peeling over the inverted index; the naive
// oracle walks the raw queries. Any divergence is a soundness bug in the
// index — the whole solver stack scores through it.
//
// Input layout: byte 0 picks the width (1..16), byte 1 the query count
// (0..40); each following byte pair forms one query's bit pattern, then two
// bytes shape the tuple and the kept subset.
func FuzzSatisfiedDropping(f *testing.F) {
	f.Add([]byte{6, 3, 0b11, 0, 0b101, 0, 0b10000, 0, 0b111111, 0b1011})
	f.Add([]byte{16, 2, 0xff, 0xff, 0x01, 0x80, 0xff, 0xff, 0x0f, 0x00})
	f.Add([]byte{1, 1, 1, 0, 1, 1})
	f.Add([]byte{9, 0, 0xaa, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 {
			return
		}
		width := 1 + int(data[0])%16
		nq := int(data[1]) % 41
		data = data[2:]

		pattern := func(b []byte) bitvec.Vector {
			v := bitvec.New(width)
			bits := uint16(0)
			if len(b) > 0 {
				bits = uint16(b[0])
			}
			if len(b) > 1 {
				bits |= uint16(b[1]) << 8
			}
			for i := 0; i < width; i++ {
				if bits&(1<<i) != 0 {
					v.Set(i)
				}
			}
			return v
		}

		log := dataset.NewQueryLog(dataset.GenericSchema(width))
		for i := 0; i < nq && len(data) >= 2; i++ {
			q := pattern(data)
			data = data[2:]
			if q.Count() == 0 {
				q.Set(i % width) // empty queries are rejected by Build
			}
			log.Queries = append(log.Queries, q)
		}
		if len(data) < 2 {
			return
		}
		tuple := pattern(data[:1])
		kept := pattern(data[1:]).And(tuple) // kept ⊆ tuple by construction

		drop := tuple.AndNot(kept).Ones()

		// Every representation mode must agree with both oracles and with
		// each other — the compressed paths are exercised here even on tiny
		// logs because ForceCompressed overrides the density heuristic.
		for _, mode := range []Mode{Auto, ForceDense, ForceCompressed} {
			ix, err := BuildWith(log, Options{Mode: mode})
			if err != nil {
				t.Fatalf("BuildWith(mode %d): %v", mode, err)
			}

			cand := ix.Candidates(tuple)
			got := ix.SatisfiedDropping(cand, drop, nil)

			// Oracle 1: walk cand and test each query against drop directly.
			naive := 0
			for _, qi := range cand.Ones() {
				hits := false
				q := log.Queries[qi]
				for _, a := range drop {
					if q.Get(a) {
						hits = true
						break
					}
				}
				if !hits {
					naive++
				}
			}
			if got != naive {
				t.Fatalf("mode %d: SatisfiedDropping = %d, naive rescorer = %d (width=%d, %d queries, tuple=%s, kept=%s)",
					mode, got, naive, width, len(log.Queries), tuple, kept)
			}

			// Oracle 2: with cand = Candidates(tuple) and kept ⊆ tuple,
			// dropping tuple\kept leaves exactly the queries contained in
			// kept — the definition the raw log computes.
			if want := log.Satisfied(kept); got != want {
				t.Fatalf("mode %d: SatisfiedDropping = %d, log.Satisfied(kept) = %d (tuple=%s, kept=%s)",
					mode, got, want, tuple, kept)
			}

			// SatisfiedWithin must agree with its Dropping specialization.
			if within := ix.SatisfiedWithin(cand, kept, nil); within != got {
				t.Fatalf("mode %d: SatisfiedWithin = %d, SatisfiedDropping = %d", mode, within, got)
			}

			// The polymorphic Bits forms must match the dense forms exactly,
			// whichever representation CandidateSet picked.
			cs := ix.CandidateSet(tuple)
			if cs.Count() != cand.Count() {
				t.Fatalf("mode %d: CandidateSet count %d, Candidates %d", mode, cs.Count(), cand.Count())
			}
			for _, qi := range cand.Ones() {
				if !cs.Get(qi) {
					t.Fatalf("mode %d: CandidateSet missing query %d", mode, qi)
				}
			}
			sc := ix.NewScratch()
			if bg := ix.SatisfiedDroppingBits(cs, drop, sc); bg != got {
				t.Fatalf("mode %d: SatisfiedDroppingBits = %d, dense = %d", mode, bg, got)
			}
			if bw := ix.SatisfiedWithinBits(cs, kept, sc); bw != got {
				t.Fatalf("mode %d: SatisfiedWithinBits = %d, dense = %d", mode, bw, got)
			}
			if s := ix.Satisfied(kept); s != got {
				t.Fatalf("mode %d: Satisfied = %d, want %d", mode, s, got)
			}
		}
	})
}

// FuzzSegmentMerge drives a Segmented index through a fuzzer-chosen schedule
// of weighted appends, tiered compactions, and full compactions, checking
// after every step that it scores bit-identically to the raw log and to a
// one-shot monolithic build, and that its rolling fingerprint tracks the
// log's. Any divergence means the delta/merge machinery is unsound — the
// serving layer's incremental rebuilds all ride on it.
//
// Input layout: byte 0 picks the width (1..12); each following op byte is
// interpreted by its low two bits — 0/1 append a query shaped by the next
// two bytes (weight = 1 + high bits of the op byte), 2 runs CompactTiered,
// 3 runs Compact.
func FuzzSegmentMerge(f *testing.F) {
	f.Add([]byte{6, 0, 0b11, 0, 1, 0b101, 0, 2, 0, 0b111, 0, 3})
	f.Add([]byte{12, 0, 0xff, 0x0f, 0xc1, 0xff, 0x0f, 2, 2, 3})
	f.Add([]byte{1, 0, 1, 0, 0, 1, 0, 0, 1, 0, 2, 0, 1, 0, 2})
	f.Add([]byte{8, 3, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 1 {
			return
		}
		width := 1 + int(data[0])%12
		data = data[1:]

		log := dataset.NewQueryLog(dataset.GenericSchema(width))
		seg, err := BuildSegmented(log, Options{})
		if err != nil {
			t.Fatalf("BuildSegmented(empty): %v", err)
		}

		probe := func(step int) {
			if seg.Fingerprint() != log.Fingerprint() {
				t.Fatalf("step %d: rolling fingerprint %x, log %x", step, seg.Fingerprint(), log.Fingerprint())
			}
			if seg.NumQueries() != log.Size() || seg.TotalWeight() != log.TotalWeight() {
				t.Fatalf("step %d: nq/weight %d/%d, log %d/%d",
					step, seg.NumQueries(), seg.TotalWeight(), log.Size(), log.TotalWeight())
			}
			oneShot, err := BuildSegmented(log, Options{})
			if err != nil {
				t.Fatalf("step %d: one-shot build: %v", step, err)
			}
			// Probe the full lattice on narrow schemas, a diagonal sweep on
			// wide ones.
			check := func(v bitvec.Vector) {
				want := log.Satisfied(v)
				if got := seg.Satisfied(v); got != want {
					t.Fatalf("step %d: segmented Satisfied(%s) = %d, raw = %d (%d segments)",
						step, v, got, want, seg.Segments())
				}
				if got := oneShot.Satisfied(v); got != want {
					t.Fatalf("step %d: one-shot Satisfied(%s) = %d, raw = %d", step, v, got, want)
				}
			}
			if width <= 8 {
				for mask := 0; mask < 1<<width; mask++ {
					v := bitvec.New(width)
					for j := 0; j < width; j++ {
						if mask&(1<<j) != 0 {
							v.Set(j)
						}
					}
					check(v)
				}
			} else {
				for lo := 0; lo < width; lo++ {
					v := bitvec.New(width)
					for j := lo; j < width; j += 2 {
						v.Set(j)
					}
					check(v)
				}
			}
		}

		for step := 0; len(data) > 0 && step < 64; step++ {
			op := data[0]
			data = data[1:]
			switch op & 3 {
			case 2:
				next, _, err := seg.CompactTiered()
				if err != nil {
					t.Fatalf("step %d: CompactTiered: %v", step, err)
				}
				seg = next
			case 3:
				next, err := seg.Compact()
				if err != nil {
					t.Fatalf("step %d: Compact: %v", step, err)
				}
				seg = next
			default:
				if len(data) < 2 {
					return
				}
				q := bitvec.New(width)
				bits := uint16(data[0]) | uint16(data[1])<<8
				data = data[2:]
				for i := 0; i < width; i++ {
					if bits&(1<<i) != 0 {
						q.Set(i)
					}
				}
				if q.Count() == 0 {
					q.Set(step % width)
				}
				w := 1 + int(op>>2)
				if err := log.AppendWeighted(q, w); err != nil {
					t.Fatalf("step %d: append: %v", step, err)
				}
				next, err := seg.Extend(log)
				if err != nil {
					t.Fatalf("step %d: Extend: %v", step, err)
				}
				seg = next
			}
			probe(step)
		}
	})
}
