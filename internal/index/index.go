// Package index builds an inverted attribute→query bitmap index over a
// query log, the shared read-only substrate of the batch solve path.
//
// The key observation is containment by complement: a conjunctive query q
// retrieves a (compressed) tuple v exactly when q ⊆ v, i.e. when q contains
// no attribute outside v. With one bitmap per attribute marking the queries
// that contain it, the set of queries satisfied by v is the whole log minus
// the union of the bitmaps of the attributes v lacks:
//
//	satisfied(v) = Q \ ⋃_{a ∉ v} with[a]
//
// For the solvers' hot path — scoring a candidate compression v ⊆ t against
// the queries already known to fit inside the tuple t — the union runs over
// only the |t|−|v| dropped attributes, turning a scan of every query into a
// handful of word-parallel AND-NOT passes with early exit. Query-size
// buckets (sizeLE) prune the starting set further: a query demanding more
// than |t| attributes can never fit inside t.
//
// An Index is immutable after Build and safe for unbounded concurrent use;
// Fingerprint ties it to the exact log contents it was built from. The
// layout follows the uncompressed word-aligned scheme of the bitmap-index
// literature (Kaser & Lemire): at the library's scale (10⁴–10⁵ queries) the
// dense representation is both smaller and faster than compressed encodings.
package index

import (
	"fmt"
	"math/bits"

	"standout/internal/bitvec"
	"standout/internal/dataset"
)

// Bitmap is a packed set of query indices: bit i set means query i of the
// indexed log is a member. Bitmaps returned by Index methods that share
// internal storage are documented as read-only.
type Bitmap []uint64

// Count returns the number of queries in the set.
func (b Bitmap) Count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// Clone returns an independent copy of b.
func (b Bitmap) Clone() Bitmap {
	out := make(Bitmap, len(b))
	copy(out, b)
	return out
}

// Get reports whether query i is in the set.
func (b Bitmap) Get(i int) bool { return b[i/64]&(1<<(i%64)) != 0 }

// Ones returns the member query indices in increasing order.
func (b Bitmap) Ones() []int {
	out := make([]int, 0, b.Count())
	for wi, w := range b {
		for w != 0 {
			t := bits.TrailingZeros64(w)
			out = append(out, wi*64+t)
			w &= w - 1
		}
	}
	return out
}

// Index is an immutable inverted index over one query log.
type Index struct {
	log     *dataset.QueryLog
	fp      uint64
	version uint64
	nq      int
	width   int
	words   int

	// with[a] is the bitmap of queries containing attribute a; empty
	// attributes share the all-zero bitmap. Backing storage is one slab.
	with []Bitmap
	// freq[a] = |with[a]|, the per-attribute frequencies every greedy needs.
	freq []int
	// sizeLE[k] is the bitmap of queries with at most k attributes,
	// k ∈ [0, maxSize]. sizeLE[maxSize] is the full log.
	sizeLE  []Bitmap
	maxSize int
}

// Build indexes the log. Cost is one pass over the log's set bits; the
// resulting index is safe for concurrent use and must be discarded when the
// log is mutated (see Stale).
func Build(log *dataset.QueryLog) (*Index, error) {
	if err := log.Validate(); err != nil {
		return nil, err
	}
	nq, width := log.Size(), log.Width()
	words := (nq + 63) / 64
	ix := &Index{
		log:     log,
		fp:      log.Fingerprint(),
		version: log.Version(),
		nq:      nq,
		width:   width,
		words:   words,
		with:    make([]Bitmap, width),
		freq:    make([]int, width),
	}

	ix.maxSize = 0
	sizes := make([]int, nq)
	for qi, q := range log.Queries {
		sizes[qi] = q.Count()
		if sizes[qi] > ix.maxSize {
			ix.maxSize = sizes[qi]
		}
		for _, a := range q.Ones() {
			ix.freq[a]++
		}
	}

	// One slab for the non-empty attribute columns; empty attributes all
	// point at a single shared zero bitmap so callers never nil-check.
	nonEmpty := 0
	for _, f := range ix.freq {
		if f > 0 {
			nonEmpty++
		}
	}
	slab := make([]uint64, (nonEmpty+1)*words)
	zero := Bitmap(slab[:words])
	next := words
	for a := 0; a < width; a++ {
		if ix.freq[a] == 0 {
			ix.with[a] = zero
			continue
		}
		ix.with[a] = Bitmap(slab[next : next+words])
		next += words
	}
	for qi, q := range log.Queries {
		w, bit := qi/64, uint64(1)<<(qi%64)
		for _, a := range q.Ones() {
			ix.with[a][w] |= bit
		}
	}

	// Cumulative size buckets: sizeLE[k] = queries with ≤ k attributes.
	ix.sizeLE = make([]Bitmap, ix.maxSize+1)
	sslab := make([]uint64, (ix.maxSize+1)*words)
	for k := range ix.sizeLE {
		ix.sizeLE[k] = Bitmap(sslab[k*words : (k+1)*words])
	}
	for qi, sz := range sizes {
		ix.sizeLE[sz][qi/64] |= 1 << (qi % 64)
	}
	for k := 1; k <= ix.maxSize; k++ {
		prev := ix.sizeLE[k-1]
		cur := ix.sizeLE[k]
		for w := range cur {
			cur[w] |= prev[w]
		}
	}
	return ix, nil
}

// Log returns the indexed query log.
func (ix *Index) Log() *dataset.QueryLog { return ix.log }

// Fingerprint returns the content hash of the log at build time.
func (ix *Index) Fingerprint() uint64 { return ix.fp }

// Stale reports whether the log has visibly changed since Build: its
// version counter moved or its length differs. In-place bit flips that
// bypass QueryLog.Touch are not detectable.
func (ix *Index) Stale() bool {
	return ix.log.Version() != ix.version || ix.log.Size() != ix.nq
}

// NumQueries returns the indexed log size S.
func (ix *Index) NumQueries() int { return ix.nq }

// Width returns the attribute count M.
func (ix *Index) Width() int { return ix.width }

// Words returns the bitmap length in 64-bit words, for sizing scratch space.
func (ix *Index) Words() int { return ix.words }

// AttrFrequencies returns per-attribute query counts. Read-only: the slice
// is the index's own storage.
func (ix *Index) AttrFrequencies() []int { return ix.freq }

// QueriesWith returns the bitmap of queries containing attribute a.
// Read-only: the bitmap is the index's own storage.
func (ix *Index) QueriesWith(a int) Bitmap {
	if a < 0 || a >= ix.width {
		panic(fmt.Sprintf("index: attribute %d out of range [0,%d)", a, ix.width))
	}
	return ix.with[a]
}

// MaxQuerySize returns the largest number of attributes any query demands.
func (ix *Index) MaxQuerySize() int { return ix.maxSize }

// SizeAtMost returns the bitmap of queries demanding at most k attributes
// (k clamped to [0, MaxQuerySize]). Read-only.
func (ix *Index) SizeAtMost(k int) Bitmap {
	if k < 0 {
		k = 0
	}
	if k > ix.maxSize {
		k = ix.maxSize
	}
	if len(ix.sizeLE) == 0 { // empty log
		return Bitmap{}
	}
	return ix.sizeLE[k]
}

// Candidates returns a fresh bitmap of the queries contained in t — exactly
// the queries any compression of t could satisfy. It starts from the size
// bucket ≤ popcount(t) and peels off the column of every attribute t lacks,
// stopping early once the set is empty.
func (ix *Index) Candidates(t bitvec.Vector) Bitmap {
	if t.Width() != ix.width {
		panic(fmt.Sprintf("index: tuple width %d, index width %d", t.Width(), ix.width))
	}
	out := ix.SizeAtMost(t.Count()).Clone()
	ix.peel(out, t) // a false return means out is already all-zero
	return out
}

// Satisfied counts the queries retrieving v: |{q : q ⊆ v}|. Equivalent to
// log.Satisfied(v) but word-parallel.
func (ix *Index) Satisfied(v bitvec.Vector) int {
	if v.Width() != ix.width {
		panic(fmt.Sprintf("index: vector width %d, index width %d", v.Width(), ix.width))
	}
	return ix.SatisfiedWithin(ix.SizeAtMost(v.Count()), v, nil)
}

// SatisfiedWithin counts the queries of cand that are contained in v,
// assuming every query of cand already satisfies q ⊆ t for some tuple t ⊇ v
// — then only the attributes of t\v need peeling, but peeling every a ∉ v is
// always correct and SatisfiedWithin does exactly that, skipping attributes
// that appear in no candidate query for free via the early exit.
//
// scratch, when non-nil, must have length Words() and is used as the working
// set to avoid allocation in solver hot loops; cand itself is never written.
func (ix *Index) SatisfiedWithin(cand Bitmap, v bitvec.Vector, scratch Bitmap) int {
	if scratch == nil {
		scratch = make(Bitmap, ix.words)
	}
	copy(scratch, cand)
	if !ix.peel(scratch, v) {
		return 0
	}
	return scratch.Count()
}

// SatisfiedDropping counts the queries of cand containing none of the
// attributes in drop — the fastest scoring form when the caller already
// knows the dropped attribute set (t \ v). scratch as in SatisfiedWithin.
func (ix *Index) SatisfiedDropping(cand Bitmap, drop []int, scratch Bitmap) int {
	if scratch == nil {
		scratch = make(Bitmap, ix.words)
	}
	copy(scratch, cand)
	for _, a := range drop {
		if ix.freq[a] == 0 {
			continue
		}
		col := ix.with[a]
		live := false
		for w := range scratch {
			scratch[w] &^= col[w]
			live = live || scratch[w] != 0
		}
		if !live {
			return 0
		}
	}
	return scratch.Count()
}

// peel removes from set every query containing an attribute outside v and
// reports whether the set is still non-empty.
func (ix *Index) peel(set Bitmap, v bitvec.Vector) bool {
	if len(set) == 0 {
		return false
	}
	for a := 0; a < ix.width; a++ {
		if ix.freq[a] == 0 || v.Get(a) {
			continue
		}
		col := ix.with[a]
		live := false
		for w := range set {
			set[w] &^= col[w]
			live = live || set[w] != 0
		}
		if !live {
			return false
		}
	}
	return true
}
