// Package index builds an inverted attribute→query bitmap index over a
// query log, the shared read-only substrate of the batch solve path.
//
// The key observation is containment by complement: a conjunctive query q
// retrieves a (compressed) tuple v exactly when q ⊆ v, i.e. when q contains
// no attribute outside v. With one bitmap per attribute marking the queries
// that contain it, the set of queries satisfied by v is the whole log minus
// the union of the bitmaps of the attributes v lacks:
//
//	satisfied(v) = Q \ ⋃_{a ∉ v} with[a]
//
// For the solvers' hot path — scoring a candidate compression v ⊆ t against
// the queries already known to fit inside the tuple t — the union runs over
// only the |t|−|v| dropped attributes, turning a scan of every query into a
// handful of word-parallel AND-NOT passes with early exit. Query-size
// buckets (sizeLE) prune the starting set further: a query demanding more
// than |t| attributes can never fit inside t.
//
// Each attribute column and each size bucket independently picks its
// representation at Build time by measured density: busy columns stay
// uncompressed word-aligned bitmaps (at moderate scale the dense layout is
// both smaller and faster — Kaser & Lemire), while sparse columns switch to
// Roaring-style compressed sets (bitvec.Compressed) whose peel cost is
// O(members) instead of O(queries/64). That is what lets one index span
// schemas with tens of thousands of attributes, where almost every column is
// nearly empty and a dense column per attribute would cost O(M·S/64) words.
// The Options mode can force either representation everywhere; results are
// bit-identical in all modes, only memory and speed differ (DESIGN.md §12).
//
// An Index is immutable after Build and safe for unbounded concurrent use;
// Fingerprint ties it to the exact log contents it was built from.
package index

import (
	"fmt"
	"math/bits"

	"standout/internal/bitvec"
	"standout/internal/dataset"
)

// Bitmap is a packed set of query indices: bit i set means query i of the
// indexed log is a member. Bitmaps returned by Index methods that share
// internal storage are documented as read-only.
type Bitmap []uint64

// Count returns the number of queries in the set.
func (b Bitmap) Count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// Clone returns an independent copy of b.
func (b Bitmap) Clone() Bitmap {
	out := make(Bitmap, len(b))
	copy(out, b)
	return out
}

// Get reports whether query i is in the set. It panics with a descriptive
// message if i is outside the bitmap's capacity [0, 64·len(b)) — note the
// capacity is the indexed log size rounded up to a word, so ids in the
// final word's padding read as false rather than panicking; Index methods
// never hand out ids in that range.
func (b Bitmap) Get(i int) bool {
	if i < 0 || i >= len(b)*64 {
		panic(fmt.Sprintf("index: query id %d out of range [0,%d)", i, len(b)*64))
	}
	return b[i/64]&(1<<(i%64)) != 0
}

// Ones returns the member query indices in increasing order.
func (b Bitmap) Ones() []int {
	out := make([]int, 0, b.Count())
	for wi, w := range b {
		for w != 0 {
			t := bits.TrailingZeros64(w)
			out = append(out, wi*64+t)
			w &= w - 1
		}
	}
	return out
}

// Mode selects how Build picks each column's and bucket's representation.
type Mode uint8

const (
	// Auto measures density per column/bucket: sets with fewer than one
	// member per dense word (and logs big enough for it to matter) are
	// stored compressed, everything else dense. The zero value.
	Auto Mode = iota
	// ForceDense stores every column and bucket as a dense bitmap — the
	// pre-compression layout, kept reachable for A/B measurement.
	ForceDense
	// ForceCompressed stores every column and bucket compressed, regardless
	// of density — exercised by the differential tests so tiny instances
	// still cover the compressed paths.
	ForceCompressed
)

// Options configures Build.
type Options struct {
	// Mode picks the representation policy; the zero value is Auto.
	Mode Mode
}

// Auto-mode thresholds: a set is compressed when its members number at most
// nq/autoDensityDiv — fewer members than the dense bitmap has words, so the
// compressed peel (O(members)) beats the dense word loop (O(nq/64)) and an
// array container (2 bytes/member) costs at most a quarter of the dense
// words. Logs under autoMinQueries are never compressed: their dense bitmaps
// are a handful of words and per-container overhead would dominate.
const (
	autoMinQueries = 1024
	autoDensityDiv = 64
)

// col is one stored query set — an attribute column or a size bucket — in
// exactly one of the two representations.
type col struct {
	dense Bitmap             // nil iff compressed
	comp  *bitvec.Compressed // nil iff dense
}

// bits returns the polymorphic read-only view of the set.
func (c col) bits(nq int) bitvec.Bits {
	if c.comp != nil {
		return c.comp
	}
	return bitvec.FromWords(nq, c.dense)
}

// Index is an immutable inverted index over one query log.
type Index struct {
	log     *dataset.QueryLog
	fp      uint64
	version uint64
	nq      int
	width   int
	words   int
	mode    Mode

	// cols[a] holds the queries containing attribute a; empty attributes
	// share one zero set. allDense short-circuits scoring onto the plain
	// word loops when no column chose compression.
	cols     []col
	allDense bool
	// freq[a] = |cols[a]|, the per-attribute member counts driving
	// representation choices and early exits.
	freq []int
	// weights mirrors the log's per-query multiplicities (shared storage,
	// nil for an unweighted log). When non-nil the Satisfied* family returns
	// weighted totals: the peel loops still track member counts for their
	// early exits, and the surviving set's weights are summed at the end.
	weights []int
	// wfreq[a] is the weighted attribute frequency (== freq when weights is
	// nil) — what the weighted greedy heuristics need.
	wfreq       []int
	totalWeight int
	// buckets[k] holds the queries with at most k attributes, k ∈ [0,
	// maxSize]. buckets[maxSize] is the full log.
	buckets []col
	maxSize int
}

// Build indexes the log with Auto representation selection. Cost is one pass
// over the log's set bits; the resulting index is safe for concurrent use
// and must be discarded when the log is mutated (see Stale).
func Build(log *dataset.QueryLog) (*Index, error) { return BuildWith(log, Options{}) }

// BuildWith is Build under explicit Options. Scoring results are identical
// in every mode; only the memory/speed trade changes.
func BuildWith(log *dataset.QueryLog, opts Options) (*Index, error) {
	if err := log.Validate(); err != nil {
		return nil, err
	}
	nq, width := log.Size(), log.Width()
	words := (nq + 63) / 64
	ix := &Index{
		log:     log,
		fp:      log.Fingerprint(),
		version: log.Version(),
		nq:      nq,
		width:   width,
		words:   words,
		mode:    opts.Mode,
		cols:    make([]col, width),
		freq:    make([]int, width),
	}

	ix.weights = log.Weights
	ix.maxSize = 0
	sizes := make([]int, nq)
	for qi, q := range log.Queries {
		sizes[qi] = q.Count()
		if sizes[qi] > ix.maxSize {
			ix.maxSize = sizes[qi]
		}
		for _, a := range q.Ones() {
			ix.freq[a]++
		}
	}
	if ix.weights == nil {
		ix.wfreq = ix.freq
		ix.totalWeight = nq
	} else {
		ix.wfreq = make([]int, width)
		for qi, q := range log.Queries {
			w := ix.weights[qi]
			ix.totalWeight += w
			for _, a := range q.Ones() {
				ix.wfreq[a] += w
			}
		}
	}

	// Pick each column's representation up front, then lay out one slab for
	// the dense columns; empty attributes all share a single zero set so
	// callers never nil-check.
	compress := func(members int) bool {
		switch opts.Mode {
		case ForceDense:
			return false
		case ForceCompressed:
			return true
		default:
			return nq >= autoMinQueries && members*autoDensityDiv <= nq
		}
	}
	nDense := 0
	for a := 0; a < width; a++ {
		if ix.freq[a] > 0 && !compress(ix.freq[a]) {
			nDense++
		}
	}
	slabCols, next := nDense, 0
	var zero col
	if opts.Mode == ForceCompressed {
		zero = col{comp: bitvec.NewCompressed(nq)}
	} else {
		slabCols++
		next = words
	}
	slab := make([]uint64, slabCols*words)
	if zero.comp == nil {
		zero.dense = Bitmap(slab[:words])
	}
	ix.allDense = true
	for a := 0; a < width; a++ {
		switch {
		case ix.freq[a] == 0:
			ix.cols[a] = zero
			if zero.comp != nil {
				ix.allDense = false
			}
		case compress(ix.freq[a]):
			ix.cols[a] = col{comp: bitvec.NewCompressed(nq)}
			ix.allDense = false
		default:
			ix.cols[a] = col{dense: Bitmap(slab[next : next+words])}
			next += words
		}
	}
	for qi, q := range log.Queries {
		w, bit := qi/64, uint64(1)<<(qi%64)
		for _, a := range q.Ones() {
			if c := ix.cols[a]; c.comp != nil {
				c.comp.Set(qi)
			} else {
				c.dense[w] |= bit
			}
		}
	}
	for a := 0; a < width; a++ {
		if c := ix.cols[a]; c.comp != nil && c.comp != zero.comp {
			c.comp.Optimize()
		}
	}

	// Cumulative size buckets: buckets[k] = queries with ≤ k attributes,
	// snapshotted per k from one running dense accumulator into whichever
	// representation the bucket's own density earns.
	ix.buckets = make([]col, ix.maxSize+1)
	cum := make([]uint64, words)
	count := 0
	for k := 0; k <= ix.maxSize; k++ {
		for qi, sz := range sizes {
			if sz == k {
				cum[qi/64] |= 1 << (qi % 64)
				count++
			}
		}
		if compress(count) {
			ix.buckets[k] = col{comp: bitvec.CompressedFrom(bitvec.FromWords(nq, cum))}
			ix.allDense = false
		} else {
			b := make(Bitmap, words)
			copy(b, cum)
			ix.buckets[k] = col{dense: b}
		}
	}
	return ix, nil
}

// Log returns the indexed query log.
func (ix *Index) Log() *dataset.QueryLog { return ix.log }

// Fingerprint returns the content hash of the log at build time.
func (ix *Index) Fingerprint() uint64 { return ix.fp }

// Stale reports whether the log has visibly changed since Build: its
// version counter moved or its length differs. In-place bit flips that
// bypass QueryLog.Touch are not detectable.
func (ix *Index) Stale() bool {
	return ix.log.Version() != ix.version || ix.log.Size() != ix.nq
}

// NumQueries returns the indexed log size S.
func (ix *Index) NumQueries() int { return ix.nq }

// Width returns the attribute count M.
func (ix *Index) Width() int { return ix.width }

// Words returns the bitmap length in 64-bit words, for sizing scratch space.
func (ix *Index) Words() int { return ix.words }

// Mode returns the representation policy the index was built with.
func (ix *Index) Mode() Mode { return ix.mode }

// AttrFrequencies returns per-attribute query weight totals — plain counts
// for an unweighted log, always equal to the log's own AttrFrequencies.
// Read-only: the slice is the index's own storage.
func (ix *Index) AttrFrequencies() []int { return ix.wfreq }

// TotalWeight returns the indexed log's total query weight (== NumQueries
// for an unweighted log) — the upper bound of Satisfied.
func (ix *Index) TotalWeight() int { return ix.totalWeight }

// Weighted reports whether the indexed log carries non-nil weights.
func (ix *Index) Weighted() bool { return ix.weights != nil }

// weightDense sums the weights of the members of a dense working set,
// short-circuiting to the member count for unweighted logs. members < 0
// means the count is unknown and must be recomputed.
func (ix *Index) weightDense(set Bitmap, members int) int {
	if ix.weights == nil {
		if members >= 0 {
			return members
		}
		return set.Count()
	}
	t := 0
	for wi, w := range set {
		for w != 0 {
			t += ix.weights[wi*64+bits.TrailingZeros64(w)]
			w &= w - 1
		}
	}
	return t
}

// weightComp is weightDense for a compressed working set.
func (ix *Index) weightComp(set *bitvec.Compressed, members int) int {
	if ix.weights == nil {
		return members
	}
	t := 0
	set.Range(func(i int) bool {
		t += ix.weights[i]
		return true
	})
	return t
}

func (ix *Index) checkAttr(a int) {
	if a < 0 || a >= ix.width {
		panic(fmt.Sprintf("index: attribute %d out of range [0,%d)", a, ix.width))
	}
}

// QueriesWith returns the dense bitmap of queries containing attribute a.
// For a dense column the bitmap is the index's own storage (read-only); a
// compressed column is materialized into a fresh bitmap on every call —
// prefer Column in code that can work through the Bits interface.
func (ix *Index) QueriesWith(a int) Bitmap {
	ix.checkAttr(a)
	c := ix.cols[a]
	if c.comp != nil {
		return Bitmap(c.comp.Dense().Words())
	}
	return c.dense
}

// Column returns the queries containing attribute a as a representation-
// polymorphic set. Read-only: the value shares the index's storage.
func (ix *Index) Column(a int) bitvec.Bits {
	ix.checkAttr(a)
	return ix.cols[a].bits(ix.nq)
}

// ColumnCompressed reports whether attribute a's column is stored in the
// compressed representation.
func (ix *Index) ColumnCompressed(a int) bool {
	ix.checkAttr(a)
	return ix.cols[a].comp != nil
}

// MaxQuerySize returns the largest number of attributes any query demands.
func (ix *Index) MaxQuerySize() int { return ix.maxSize }

// bucket returns the size-≤-k bucket, clamping k; ok is false on an empty
// log (no buckets exist).
func (ix *Index) bucket(k int) (col, bool) {
	if len(ix.buckets) == 0 {
		return col{}, false
	}
	if k < 0 {
		k = 0
	}
	if k > ix.maxSize {
		k = ix.maxSize
	}
	return ix.buckets[k], true
}

// SizeAtMost returns the dense bitmap of queries demanding at most k
// attributes (k clamped to [0, MaxQuerySize]). For a dense bucket the bitmap
// is shared read-only storage; a compressed bucket is materialized fresh.
func (ix *Index) SizeAtMost(k int) Bitmap {
	b, ok := ix.bucket(k)
	if !ok {
		return Bitmap{}
	}
	if b.comp != nil {
		return Bitmap(b.comp.Dense().Words())
	}
	return b.dense
}

// Scratch is the reusable working set of the scoring methods: a dense word
// buffer and a compressed set, so whichever representation a candidate set
// arrives in can be copied and peeled without touching the allocator. One
// Scratch serves one goroutine; create per-worker copies for parallel
// scoring (core's normalized.shard does).
type Scratch struct {
	words Bitmap
	comp  *bitvec.Compressed
}

// NewScratch returns a Scratch sized for this index.
func (ix *Index) NewScratch() *Scratch {
	return &Scratch{
		words: make(Bitmap, ix.words),
		comp:  bitvec.NewCompressed(ix.nq),
	}
}

// Candidates returns a fresh dense bitmap of the queries contained in t —
// exactly the queries any compression of t could satisfy. It starts from
// the size bucket ≤ popcount(t) and peels off the column of every attribute
// t lacks, stopping early once the set is empty. CandidateSet is the
// representation-preserving form.
func (ix *Index) Candidates(t bitvec.Vector) Bitmap {
	switch s := ix.CandidateSet(t).(type) {
	case *bitvec.Compressed:
		return Bitmap(s.Dense().Words())
	case bitvec.Vector:
		return Bitmap(s.Words())
	default:
		panic("index: unreachable candidate representation")
	}
}

// CandidateSet is Candidates without forcing a representation: the result is
// a fresh mutable set in the same representation as the size bucket it was
// peeled from (a bitvec.Vector view over a fresh dense bitmap, or a
// *bitvec.Compressed), so wide sparse schemas keep their candidates
// compressed end to end.
func (ix *Index) CandidateSet(t bitvec.Vector) bitvec.Bits {
	if t.Width() != ix.width {
		panic(fmt.Sprintf("index: tuple width %d, index width %d", t.Width(), ix.width))
	}
	b, ok := ix.bucket(t.Count())
	if !ok || (b.comp == nil && b.dense == nil) {
		return bitvec.New(ix.nq)
	}
	if b.comp != nil {
		out := bitvec.NewCompressed(ix.nq)
		out.CopyFrom(b.comp)
		rem := out.Count()
		for a := 0; a < ix.width && rem > 0; a++ {
			if ix.freq[a] == 0 || t.Get(a) {
				continue
			}
			rem -= out.AndNotWith(ix.cols[a].bits(ix.nq))
		}
		return out
	}
	out := b.dense.Clone()
	if ix.allDense {
		ix.peel(out, t)
	} else {
		view := bitvec.FromWords(ix.nq, out)
		rem := out.Count()
		for a := 0; a < ix.width && rem > 0; a++ {
			if ix.freq[a] == 0 || t.Get(a) {
				continue
			}
			rem -= ix.dropOne(view, a)
		}
	}
	return bitvec.FromWords(ix.nq, out)
}

// Satisfied counts the queries retrieving v: |{q : q ⊆ v}|. Equivalent to
// log.Satisfied(v) but word-parallel.
func (ix *Index) Satisfied(v bitvec.Vector) int {
	if v.Width() != ix.width {
		panic(fmt.Sprintf("index: vector width %d, index width %d", v.Width(), ix.width))
	}
	b, ok := ix.bucket(v.Count())
	if !ok {
		return 0
	}
	return ix.SatisfiedWithinBits(b.bits(ix.nq), v, nil)
}

// SatisfiedWithin counts the queries of cand that are contained in v,
// assuming every query of cand already satisfies q ⊆ t for some tuple t ⊇ v
// — then only the attributes of t\v need peeling, but peeling every a ∉ v is
// always correct and SatisfiedWithin does exactly that, skipping attributes
// that appear in no candidate query for free via the early exit.
//
// scratch, when non-nil, must have length Words() and is used as the working
// set to avoid allocation in solver hot loops; cand itself is never written.
func (ix *Index) SatisfiedWithin(cand Bitmap, v bitvec.Vector, scratch Bitmap) int {
	if scratch == nil {
		scratch = make(Bitmap, ix.words)
	}
	copy(scratch, cand)
	if ix.allDense {
		if !ix.peel(scratch, v) {
			return 0
		}
		return ix.weightDense(scratch, -1)
	}
	view := bitvec.FromWords(ix.nq, scratch)
	rem := scratch.Count()
	for a := 0; a < ix.width && rem > 0; a++ {
		if ix.freq[a] == 0 || v.Get(a) {
			continue
		}
		rem -= ix.dropOne(view, a)
	}
	return ix.weightDense(scratch, rem)
}

// SatisfiedWithinBits is SatisfiedWithin over any candidate representation,
// peeling in the representation cand arrived in. sc may be nil (a fresh
// scratch is allocated); cand is never written.
func (ix *Index) SatisfiedWithinBits(cand bitvec.Bits, v bitvec.Vector, sc *Scratch) int {
	if sc == nil {
		sc = ix.NewScratch()
	}
	c, ok := cand.(*bitvec.Compressed)
	if !ok {
		return ix.SatisfiedWithin(ix.denseOf(cand, sc), v, sc.words)
	}
	sc.comp.CopyFrom(c)
	rem := sc.comp.Count()
	for a := 0; a < ix.width && rem > 0; a++ {
		if ix.freq[a] == 0 || v.Get(a) {
			continue
		}
		rem -= sc.comp.AndNotWith(ix.cols[a].bits(ix.nq))
	}
	return ix.weightComp(sc.comp, rem)
}

// SatisfiedDropping counts the queries of cand containing none of the
// attributes in drop — the fastest scoring form when the caller already
// knows the dropped attribute set (t \ v). scratch as in SatisfiedWithin.
func (ix *Index) SatisfiedDropping(cand Bitmap, drop []int, scratch Bitmap) int {
	if scratch == nil {
		scratch = make(Bitmap, ix.words)
	}
	copy(scratch, cand)
	if ix.allDense {
		for _, a := range drop {
			if ix.freq[a] == 0 {
				continue
			}
			col := ix.cols[a].dense
			live := false
			for w := range scratch {
				scratch[w] &^= col[w]
				live = live || scratch[w] != 0
			}
			if !live {
				return 0
			}
		}
		return ix.weightDense(scratch, -1)
	}
	view := bitvec.FromWords(ix.nq, scratch)
	rem := scratch.Count()
	for _, a := range drop {
		if rem == 0 {
			return 0
		}
		if ix.freq[a] == 0 {
			continue
		}
		rem -= ix.dropOne(view, a)
	}
	return ix.weightDense(scratch, rem)
}

// SatisfiedDroppingBits is SatisfiedDropping over any candidate
// representation — the solvers' hot loop. A compressed candidate set is
// copied into the compressed scratch (allocation-free once warm) and peeled
// member-wise: each drop costs O(|working set|) membership tests against
// the column, independent of the log size. sc may be nil; cand is never
// written.
func (ix *Index) SatisfiedDroppingBits(cand bitvec.Bits, drop []int, sc *Scratch) int {
	if sc == nil {
		sc = ix.NewScratch()
	}
	c, ok := cand.(*bitvec.Compressed)
	if !ok {
		return ix.SatisfiedDropping(ix.denseOf(cand, sc), drop, sc.words)
	}
	sc.comp.CopyFrom(c)
	rem := sc.comp.Count()
	for _, a := range drop {
		if rem == 0 {
			return 0
		}
		if ix.freq[a] == 0 {
			continue
		}
		rem -= sc.comp.AndNotWith(ix.cols[a].bits(ix.nq))
	}
	return ix.weightComp(sc.comp, rem)
}

// denseOf views cand's words, materializing through the scratch buffer only
// for foreign Bits implementations.
func (ix *Index) denseOf(cand bitvec.Bits, sc *Scratch) Bitmap {
	if v, ok := cand.(bitvec.Vector); ok {
		return Bitmap(v.Words())
	}
	for i := range sc.words {
		sc.words[i] = 0
	}
	cand.Range(func(i int) bool {
		sc.words[i/64] |= 1 << (i % 64)
		return true
	})
	// The scratch doubles as the working set afterwards: hand back a copy.
	return sc.words.Clone()
}

// dropOne removes column a from a dense working set, returning how many
// queries were removed. Dense columns run the word loop; compressed columns
// touch only their members.
func (ix *Index) dropOne(set bitvec.Vector, a int) int {
	c := ix.cols[a]
	if c.comp != nil {
		return set.AndNotWith(c.comp)
	}
	words := set.Words()
	removed := 0
	for w := range words {
		old := words[w]
		words[w] = old &^ c.dense[w]
		removed += bits.OnesCount64(old &^ words[w])
	}
	return removed
}

// peel removes from set every query containing an attribute outside v and
// reports whether the set is still non-empty. All-dense fast path.
func (ix *Index) peel(set Bitmap, v bitvec.Vector) bool {
	if len(set) == 0 {
		return false
	}
	for a := 0; a < ix.width; a++ {
		if ix.freq[a] == 0 || v.Get(a) {
			continue
		}
		col := ix.cols[a].dense
		live := false
		for w := range set {
			set[w] &^= col[w]
			live = live || set[w] != 0
		}
		if !live {
			return false
		}
	}
	return true
}

// MemStats reports how the index stored its sets and an estimate of the
// bytes the column and bucket payloads occupy — the quantities the
// wide-schema bench (BENCH_bitmap.json) compares across modes.
type MemStats struct {
	DenseColumns      int // attribute columns stored as dense bitmaps (incl. the shared zero set once)
	CompressedColumns int
	DenseBuckets      int // size buckets stored as dense bitmaps
	CompressedBuckets int
	Bytes             int // total payload estimate across columns and buckets
}

// Mem returns the index's representation statistics.
func (ix *Index) Mem() MemStats {
	var st MemStats
	seen := map[*bitvec.Compressed]bool{}
	seenDense := map[*uint64]bool{}
	account := func(c col, denseN, compN *int) {
		if c.comp != nil {
			*compN++
			if !seen[c.comp] {
				seen[c.comp] = true
				st.Bytes += c.comp.SizeBytes()
			}
			return
		}
		*denseN++
		var key *uint64
		if len(c.dense) > 0 {
			key = &c.dense[0]
		}
		if !seenDense[key] {
			seenDense[key] = true
			st.Bytes += 8 * len(c.dense)
		}
	}
	for a := 0; a < ix.width; a++ {
		account(ix.cols[a], &st.DenseColumns, &st.CompressedColumns)
	}
	for k := range ix.buckets {
		account(ix.buckets[k], &st.DenseBuckets, &st.CompressedBuckets)
	}
	return st
}
