package standout

import (
	"io"

	"standout/internal/dataset"
	"standout/internal/gen"
)

// Data generation and IO re-exports: the surrogates of the paper's
// evaluation datasets (§VII) and the CSV layout shared by the cmd tools.

// CarAttrs are the 32 Boolean option attributes of the cars surrogate.
var CarAttrs = gen.CarAttrs

// CarsDatasetSize is the paper's cars-table row count (15,211).
const CarsDatasetSize = gen.CarsSize

// GenerateCars synthesizes the used-cars dataset surrogate: n rows over the
// CarAttrs schema with realistic option-package correlations.
func GenerateCars(seed int64, n int) *Table { return gen.Cars(seed, n) }

// WorkloadOptions tunes synthetic query-log generation.
type WorkloadOptions = gen.WorkloadOptions

// GenerateSyntheticWorkload draws queries whose sizes follow the paper's
// mixture (1 attr 20%, 2–3 attrs 30% each, 4–5 attrs 10% each) unless
// overridden in opts.
func GenerateSyntheticWorkload(schema *Schema, seed int64, size int, opts WorkloadOptions) *QueryLog {
	return gen.SyntheticWorkload(schema, seed, size, opts)
}

// GenerateRealWorkload draws the surrogate of the paper's 185-query real
// workload: popularity-biased queries of at least four attributes.
func GenerateRealWorkload(tab *Table, seed int64, size int) *QueryLog {
	return gen.RealWorkload(tab, seed, size)
}

// PickTuples selects n random rows as to-be-advertised products.
func PickTuples(tab *Table, seed int64, n int) []Vector {
	return gen.PickTuples(tab, seed, n)
}

// ReadTableCSV parses a Boolean table (optionally with a leading id column).
func ReadTableCSV(r io.Reader) (*Table, error) { return dataset.ReadTableCSV(r) }

// WriteTableCSV writes a Boolean table in the layout ReadTableCSV reads.
func WriteTableCSV(w io.Writer, t *Table) error { return dataset.WriteTableCSV(w, t) }

// ReadQueryLogCSV parses a query log from CSV.
func ReadQueryLogCSV(r io.Reader) (*QueryLog, error) { return dataset.ReadQueryLogCSV(r) }

// WriteQueryLogCSV writes a query log as CSV.
func WriteQueryLogCSV(w io.Writer, q *QueryLog) error { return dataset.WriteQueryLogCSV(w, q) }

// Numeric and categorical surrogate data (§II.B / §V variants).

// NumericCarAttrs are the numeric attributes of the cars surrogate.
var NumericCarAttrs = gen.NumericCarAttrs

// GenerateNumericCars synthesizes correlated numeric car data (price,
// mileage, year, MPG) aligned with NumericCarAttrs.
func GenerateNumericCars(seed int64, n int) [][]float64 { return gen.NumericCars(seed, n) }

// NumericCarSchema returns the schema over NumericCarAttrs.
func NumericCarSchema() *Schema { return gen.NumericSchema() }

// GenerateRangeWorkload draws range queries anchored at rows of the numeric
// data (budget caps, mileage caps, minimum year/MPG).
func GenerateRangeWorkload(seed int64, size int, data [][]float64) *NumLog {
	return gen.RangeWorkload(seed, size, data)
}

// CategoricalCarSchema returns the Make/Color/Transmission/BodyStyle schema.
func CategoricalCarSchema() *CatSchema { return gen.CatCarSchema() }

// GenerateCategoricalCars synthesizes categorical car tuples with skewed
// value popularity.
func GenerateCategoricalCars(seed int64, n int) []CatTuple {
	return gen.CategoricalCars(seed, n)
}

// GenerateCategoricalWorkload draws categorical queries constraining one or
// two attributes with buyer-like popularity skew.
func GenerateCategoricalWorkload(seed int64, size int) *CatLog {
	return gen.CategoricalWorkload(seed, size)
}
